"""Raft membership group: elections, fencing, views, ring epochs.

Everything here drives the group through the public cluster surface —
``build_cluster`` with ``ReplicationConfig(consensus=True)`` — so the
control-plane mesh, liveness piggybacking on the data servers, and the
client publication bus are all exercised, not just the state machine.
Raft tickers never terminate, so every ``sim.run`` is bounded.
"""

from repro.consensus import FOLLOWER, LEADER
from repro.core.cluster import ReplicationConfig, build_cluster
from repro.core.profiles import H_RDMA_OPT_NONB_I
from repro.units import MB, MS


def consensus_cluster(observe=False, raft_seed=0, num_servers=3,
                      factor=2):
    return build_cluster(
        H_RDMA_OPT_NONB_I, num_servers=num_servers, num_clients=2,
        server_mem=16 * MB, ssd_limit=64 * MB,
        request_timeout=1 * MS, failure_threshold=1, observe=observe,
        replication=ReplicationConfig(factor=factor, write_mode="sync",
                                      router="ketama", consensus=True,
                                      raft_seed=raft_seed))


def settle(cluster, ms=10):
    cluster.sim.run(until=cluster.sim.timeout(ms * MS))


class TestElection:
    def test_initial_election_produces_a_leader_and_a_view(self):
        cluster = consensus_cluster()
        settle(cluster)
        raft = cluster.raft
        assert raft.leader_index is not None
        assert raft.elections() >= 1
        view = raft.view
        assert view.epoch >= 1
        assert view.alive == frozenset(range(3))
        # Committed views reached the clients over the publication bus.
        for client in cluster.clients:
            assert client.view_epoch == view.epoch

    def test_crash_the_leader_forces_a_fenced_reelection(self):
        cluster = consensus_cluster()
        settle(cluster)
        raft = cluster.raft
        old_leader = raft.leader_index
        old_term = raft.nodes[old_leader].term
        elections_before = raft.elections()
        epoch_before = raft.view.epoch

        cluster.servers[old_leader].crash()
        settle(cluster, ms=15)

        new_leader = raft.leader_index
        assert new_leader is not None and new_leader != old_leader
        assert raft.elections() > elections_before
        # Term fencing: the new leader won a strictly higher term.
        assert raft.nodes[new_leader].term > old_term
        # The committed view excludes the corpse, with a bumped epoch.
        view = raft.view
        assert view.epoch > epoch_before
        assert old_leader not in view.alive
        # ...and the clients route from that committed knowledge.
        for client in cluster.clients:
            assert client.view_epoch == view.epoch
            assert old_leader in (client._view_excludes or frozenset())

    def test_rejoined_old_leader_steps_down_and_is_readmitted(self):
        cluster = consensus_cluster()
        settle(cluster)
        raft = cluster.raft
        old_leader = raft.leader_index
        cluster.servers[old_leader].crash()
        settle(cluster, ms=15)
        epoch_degraded = raft.view.epoch

        cluster.restart_server(old_leader)
        settle(cluster, ms=15)

        # The healed node adopted the higher term and follows.
        node = raft.nodes[old_leader]
        assert node.role == FOLLOWER
        assert node.term == raft.nodes[raft.leader_index].term
        # Membership converged back to everyone, through a fresh epoch.
        view = raft.view
        assert view.epoch > epoch_degraded
        assert view.alive == frozenset(range(3))
        for client in cluster.clients:
            assert client._view_excludes is None

    def test_single_leader_per_term(self):
        cluster = consensus_cluster()
        settle(cluster)
        raft = cluster.raft
        cluster.servers[raft.leader_index].crash()
        settle(cluster, ms=15)
        leaders = [n for n in raft.nodes if n.role == LEADER and n.live()]
        assert len(leaders) == 1

    def test_same_seed_replays_identically(self):
        def trace(raft_seed):
            cluster = consensus_cluster(raft_seed=raft_seed)
            settle(cluster)
            raft = cluster.raft
            first = raft.leader_index
            cluster.servers[first].crash()
            settle(cluster, ms=15)
            return (first, raft.leader_index, raft.elections(),
                    raft.view.epoch, raft.view.alive,
                    [n.term for n in raft.nodes])

        assert trace(3) == trace(3)


class TestObservability:
    def test_election_and_view_metrics_exported(self):
        cluster = consensus_cluster(observe=True)
        settle(cluster)
        cluster.servers[cluster.raft.leader_index].crash()
        settle(cluster, ms=15)

        snap = cluster.obs.snapshot()
        elections = sum(v for k, v in snap["counters"].items()
                        if k.startswith("raft_elections{"))
        assert elections == cluster.raft.elections() >= 2
        terms = [v for k, v in snap["gauges"].items()
                 if k.startswith("raft_term{")]
        assert terms and max(terms) >= 2
        assert snap["gauges"]["raft_view_epoch"] == \
            float(cluster.raft.view.epoch)
        client_epochs = [v for k, v in snap["gauges"].items()
                        if k.startswith("client_view_epoch{")]
        assert client_epochs == [float(cluster.raft.view.epoch)] * 2


class TestRingEpochRouting:
    """Satellite regression: a ring-epoch bump on partition-heal must
    keep the primary-replica invariant — ``replicas_for(key, n)[0] ==
    server_for(key)`` under the view's alive set — on both routers."""

    def check_invariant(self, cluster, n=2):
        router = cluster._client_router()
        alive = set(cluster.raft.view.alive)
        for i in range(64):
            key = b"key:%010d" % i
            assert (router.replicas_for(key, n, alive)[0]
                    == router.server_for(key, alive))

    def run_partition_heal(self, router_name):
        cluster = build_cluster(
            H_RDMA_OPT_NONB_I, num_servers=4, num_clients=1,
            server_mem=16 * MB, ssd_limit=64 * MB,
            request_timeout=1 * MS, failure_threshold=1,
            replication=ReplicationConfig(factor=2, router=router_name,
                                          consensus=True))
        settle(cluster)
        raft = cluster.raft
        victim = (raft.leader_index + 1) % 4  # a follower
        self.check_invariant(cluster)

        cluster.servers[victim].partition()
        settle(cluster, ms=15)
        degraded = raft.view
        assert victim not in degraded.alive
        self.check_invariant(cluster)

        cluster.servers[victim].heal()
        cluster.resync_server(victim)
        settle(cluster, ms=15)
        healed = raft.view
        assert healed.epoch > degraded.epoch  # the heal bumped the epoch
        assert healed.alive == frozenset(range(4))
        self.check_invariant(cluster)

    def test_modulo(self):
        self.run_partition_heal("modulo")

    def test_ketama(self):
        self.run_partition_heal("ketama")
