"""Hybrid logical clock: monotonicity, remote observation, merge order."""

from repro.consensus import HybridLogicalClock, later


class FakeSim:
    def __init__(self, now=0.0):
        self.now = now


class TestStamp:
    def test_strictly_increasing_at_frozen_time(self):
        clock = HybridLogicalClock(FakeSim(), origin=0)
        stamps = [clock.stamp() for _ in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)
        # Physical component frozen, so the logical counter does the work.
        assert {s[0] for s in stamps} == {0.0}
        assert [s[1] for s in stamps] == list(range(10))

    def test_physical_advance_resets_logical(self):
        sim = FakeSim()
        clock = HybridLogicalClock(sim, origin=0)
        clock.stamp()
        clock.stamp()
        sim.now = 1.5
        assert clock.stamp() == (1.5, 0, 0)

    def test_origin_rides_every_stamp(self):
        clock = HybridLogicalClock(FakeSim(), origin=7)
        assert clock.stamp()[2] == 7


class TestObserve:
    def test_local_stamps_sort_after_observed_remote(self):
        clock = HybridLogicalClock(FakeSim(), origin=0)
        remote = (2.0, 5, 1)
        clock.observe(remote)
        assert clock.stamp() > remote

    def test_observe_none_is_noop(self):
        clock = HybridLogicalClock(FakeSim(), origin=0)
        clock.observe(None)
        assert clock.stamp() == (0.0, 0, 0)

    def test_stale_remote_does_not_rewind(self):
        sim = FakeSim(now=3.0)
        clock = HybridLogicalClock(sim, origin=0)
        first = clock.stamp()
        clock.observe((1.0, 99, 1))
        assert clock.stamp() > first


class TestMergeOrder:
    def test_tuple_comparison_is_the_merge_order(self):
        # physical first, then logical, then origin.
        assert (2.0, 0, 0) > (1.0, 9, 9)
        assert (1.0, 1, 0) > (1.0, 0, 9)
        assert (1.0, 0, 1) > (1.0, 0, 0)

    def test_origin_breaks_exact_ties_deterministically(self):
        a = HybridLogicalClock(FakeSim(), origin=0).stamp()
        b = HybridLogicalClock(FakeSim(), origin=1).stamp()
        assert a != b
        assert later(a, b) == b

    def test_later_treats_none_as_smallest(self):
        stamp = (1.0, 0, 0)
        assert later(None, stamp) == stamp
        assert later(stamp, None) == stamp
        assert later(None, None) is None
