"""Acceptance: crash the leader under sustained YCSB load.

The ISSUE's headline scenario — with consensus-owned membership, a
leader crash during a YCSB workload-A stream must produce a real,
observable election (``raft_elections`` moves, the view-epoch gauge
bumps, clients re-route from the committed view) while the run stays
green under the linearizability checker in sync mode.
"""

from repro.consistency import HistoryRecorder, check_history
from repro.core.cluster import ReplicationConfig, build_cluster
from repro.core.profiles import H_RDMA_OPT_NONB_I
from repro.units import KB, MB, MS
from repro.workloads import CORE_WORKLOADS, generate_ycsb_ops

NUM_KEYS = 32
VALUE = 4 * KB


def test_crash_the_leader_under_load_stays_green():
    cluster = build_cluster(
        H_RDMA_OPT_NONB_I, num_servers=3, num_clients=2,
        server_mem=16 * MB, ssd_limit=64 * MB,
        request_timeout=1 * MS, failure_threshold=1, observe=True,
        replication=ReplicationConfig(factor=2, write_mode="sync",
                                      router="ketama", consensus=True))
    sim = cluster.sim
    streams = [generate_ycsb_ops(CORE_WORKLOADS["A"], num_ops=150,
                                 num_keys=NUM_KEYS, value_length=VALUE,
                                 seed=11, client_index=i)
               for i in range(2)]
    keys = {op.key for stream in streams for op in stream}
    cluster.preload([(k, VALUE) for k in sorted(keys)])

    # Let the group elect before load starts, so the assassin knows
    # which server is the leader.
    sim.run(until=sim.timeout(8 * MS))
    raft = cluster.raft
    leader = raft.leader_index
    assert leader is not None
    elections_before = raft.elections()
    epoch_before = raft.view.epoch

    recorder = HistoryRecorder().attach(cluster)

    def drive(client, stream):
        for op in stream:
            if op.kind == "get":
                yield from client.get(op.key)
            else:
                yield from client.set(op.key, op.value_length)

    def assassin():
        yield sim.timeout(1 * MS)
        cluster.servers[leader].crash()

    drivers = [sim.spawn(drive(c, stream), name=f"load{i}")
               for i, (c, stream) in enumerate(zip(cluster.clients,
                                                   streams))]
    sim.spawn(assassin(), name="assassin")
    sim.run(until=sim.all_of(drivers))
    # The stream can drain inside the election timeout; give the group
    # a bounded beat to finish the re-election it is already running.
    sim.run(until=sim.timeout(10 * MS))

    # The crash produced an observable, fenced election...
    assert raft.elections() > elections_before
    new_leader = raft.leader_index
    assert new_leader is not None and new_leader != leader
    assert raft.view.epoch > epoch_before
    assert leader not in raft.view.alive
    snap = cluster.obs.snapshot()
    elections_metric = sum(v for k, v in snap["counters"].items()
                           if k.startswith("raft_elections{"))
    assert elections_metric == raft.elections()
    assert snap["gauges"]["raft_view_epoch"] == float(raft.view.epoch)
    for client in cluster.clients:
        assert client.view_epoch == raft.view.epoch

    # ...and every client drained with a linearizable history.
    for client in cluster.clients:
        assert client.outstanding_count == 0
    events = recorder.finish()
    recorder.detach()
    report = check_history(events, recorder.initial_tokens,
                           write_mode="sync", full=True)
    assert report.mode == "linearizable"
    assert report.ok, report.summary()
    assert report.ops_checked == len(events) > 0
