"""Property-based tests for the slab allocator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.item import Item
from repro.server.slab import SlabAllocator
from repro.units import KB, MB


def check_invariants(alloc: SlabAllocator) -> None:
    """Structural invariants that must hold after any op sequence."""
    seen_pages = set()
    for cls in alloc.classes:
        for page in cls.pages:
            assert page.page_id not in seen_pages, "page in two classes"
            seen_pages.add(page.page_id)
            assert page.clsid == cls.clsid
            assert page.used + len(page.free_chunks) == page.capacity
            # No chunk is both free and occupied.
            assert not (set(page.items) & set(page.free_chunks))
            for idx, item in page.items.items():
                assert item.page is page and item.chunk_index == idx
                assert item.total_size <= cls.chunk_size
        for page in cls.partial:
            assert page in cls.pages
    assert alloc.assigned_pages == len(seen_pages)
    assert alloc.assigned_pages <= alloc.total_pages


@st.composite
def op_sequences(draw):
    """Sequences of (alloc size | free index) operations."""
    n = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("alloc", draw(st.integers(min_value=1,
                                                  max_value=200 * KB))))
        else:
            ops.append(("free", draw(st.integers(min_value=0,
                                                 max_value=1000))))
    return ops


@settings(max_examples=60, deadline=None)
@given(op_sequences())
def test_alloc_free_sequences_preserve_invariants(ops):
    alloc = SlabAllocator(4 * MB)
    live = []
    for kind, arg in ops:
        if kind == "alloc":
            item = Item(b"k%d" % len(live), max(0, arg - 60))
            cls = alloc.class_for(item.total_size)
            assert cls is not None
            page = alloc.alloc_chunk(cls, item)
            if page is not None:
                live.append(item)
        elif live:
            item = live.pop(arg % len(live))
            alloc.free_chunk(item)
        check_invariants(alloc)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=900 * KB),
                min_size=1, max_size=60))
def test_memory_never_oversubscribed(sizes):
    alloc = SlabAllocator(2 * MB)
    allocated_bytes = 0
    for i, size in enumerate(sizes):
        item = Item(b"x%d" % i, size)
        cls = alloc.class_for(item.total_size)
        if cls is None:
            continue
        if alloc.alloc_chunk(cls, item) is not None:
            allocated_bytes += cls.chunk_size
    # Chunk bytes can never exceed the configured memory limit.
    assert allocated_bytes <= alloc.mem_limit
    check_invariants(alloc)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=1 * MB))
def test_class_for_fits_and_is_minimal(size):
    alloc = SlabAllocator(4 * MB)
    cls = alloc.class_for(size)
    assert cls is not None
    assert cls.chunk_size >= size
    idx = alloc.classes.index(cls)
    if idx > 0:
        assert alloc.classes[idx - 1].chunk_size < size
