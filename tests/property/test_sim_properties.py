"""Property-based tests for the simulation engine and workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.hashing import ModuloRouter, one_at_a_time
from repro.core import metrics
from repro.client.request import OpRecord
from repro.sim import Simulator, Store
from repro.workloads.distributions import ZipfSampler


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=50))
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []

    def proc(sim, d):
        yield sim.timeout(d)
        fired.append(sim.now)

    for d in delays:
        sim.spawn(proc(sim, d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(), min_size=1, max_size=60))
def test_store_is_fifo_for_any_items(items):
    sim = Simulator()
    store = Store(sim)
    out = []

    def producer(sim):
        for it in items:
            yield store.put(it)

    def consumer(sim):
        for _ in items:
            out.append((yield store.get()))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert out == items


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_one_at_a_time_is_32bit_and_stable(key):
    h = one_at_a_time(key)
    assert 0 <= h < 2 ** 32
    assert h == one_at_a_time(key)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=1, max_size=32),
       st.integers(min_value=1, max_value=16))
def test_router_in_range(key, n):
    assert 0 <= ModuloRouter(n).server_for(key) < n


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=5000),
       st.floats(min_value=0.1, max_value=1.5),
       st.integers(min_value=0, max_value=1000))
def test_zipf_draws_always_in_range(num_keys, theta, seed):
    s = ZipfSampler(num_keys, theta=theta, seed=seed)
    draws = s.sample(200)
    assert draws.min() >= 0
    assert draws.max() < num_keys


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 1000)),
                min_size=1, max_size=80))
def test_priority_store_matches_heap_model(items):
    """PriorityStore must drain in (priority, insertion) order."""
    from repro.sim import PriorityStore

    sim = Simulator()
    ps = PriorityStore(sim)
    out = []

    def consumer(sim):
        for _ in items:
            out.append((yield ps.get()))

    for i, (prio, val) in enumerate(items):
        ps.put((prio, i, val), priority=prio)
    sim.spawn(consumer(sim))
    sim.run()
    assert out == sorted(out, key=lambda t: (t[0], t[1]))
    assert len(ps) == 0


@st.composite
def record_lists(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    recs = []
    for i in range(n):
        t0 = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
        dur = draw(st.floats(min_value=1e-9, max_value=10, allow_nan=False))
        blocked = draw(st.floats(min_value=0, max_value=dur,
                                 allow_nan=False))
        recs.append(OpRecord(op="get", api="get", key_length=8,
                             value_length=128, status="HIT", t_issue=t0,
                             t_complete=t0 + dur, blocked_time=blocked))
    return recs


@settings(max_examples=60, deadline=None)
@given(record_lists())
def test_metric_bounds(recs):
    assert metrics.mean_latency(recs) > 0
    assert metrics.effective_latency(recs) > 0
    assert 0.0 <= metrics.overlap_percent(recs) <= 100.0
    assert metrics.throughput(recs) >= 0.0
    p50 = metrics.percentile_latency(recs, 50)
    p99 = metrics.percentile_latency(recs, 99)
    assert p50 <= p99
    bd = metrics.stage_breakdown(recs)
    assert all(v >= 0 for v in bd.values())
