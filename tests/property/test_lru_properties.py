"""Property-based tests: the intrusive LRU against a reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.item import Item
from repro.server.lru import LRUList


@st.composite
def lru_programs(draw):
    n = draw(st.integers(min_value=1, max_value=200))
    return [(draw(st.sampled_from(["insert", "touch", "remove"])),
             draw(st.integers(min_value=0, max_value=30)))
            for _ in range(n)]


@settings(max_examples=100, deadline=None)
@given(lru_programs())
def test_lru_matches_reference_model(program):
    lru = LRUList()
    model = []  # most recent first
    pool = {i: Item(b"k%d" % i, 10) for i in range(31)}
    inside = set()

    for op, i in program:
        item = pool[i]
        if op == "insert" and i not in inside:
            lru.insert_head(item)
            model.insert(0, i)
            inside.add(i)
        elif op == "touch" and i in inside:
            lru.touch(item)
            model.remove(i)
            model.insert(0, i)
        elif op == "remove" and i in inside:
            lru.remove(item)
            model.remove(i)
            inside.discard(i)
        # Full-state comparison after every step.
        assert [pool[j] for j in model] == list(lru)
        assert len(lru) == len(model)
        coldest = lru.coldest()
        assert coldest is (pool[model[-1]] if model else None)

    # Detached items have clean links.
    for i in set(pool) - inside:
        assert pool[i].lru_prev is None and pool[i].lru_next is None
