"""Property-based tests: page cache counters and residency bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.storage.device import BlockDevice
from repro.storage.pagecache import PageCache
from repro.storage.params import PageCacheParams, RAMDISK
from repro.units import KB


@st.composite
def io_programs(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["write", "read", "mmap_write",
                                     "discard", "sync"]))
        offset = draw(st.integers(min_value=0, max_value=63)) * 4 * KB
        nbytes = draw(st.integers(min_value=1, max_value=16)) * 4 * KB
        ops.append((kind, offset, nbytes))
    return ops


def check(cache: PageCache) -> None:
    actual_dirty = sum(1 for d, _ in cache._pages.values() if d)
    assert cache._dirty == actual_dirty, "dirty counter desync"
    assert cache.resident_pages <= cache.capacity_pages


@settings(max_examples=60, deadline=None)
@given(io_programs())
def test_counters_and_bounds_hold(ops):
    sim = Simulator()
    dev = BlockDevice(sim, RAMDISK)
    cache = PageCache(sim, dev, PageCacheParams(size_bytes=128 * KB,
                                                dirty_ratio=0.5))

    def driver():
        for kind, offset, nbytes in ops:
            if kind == "write":
                yield from cache.write(offset, nbytes)
            elif kind == "mmap_write":
                yield from cache.write(offset, nbytes, origin="mmap")
            elif kind == "read":
                yield from cache.read(offset, nbytes)
            elif kind == "discard":
                cache.discard(offset, nbytes)
            else:
                yield from cache.sync()
            check(cache)

    sim.run(until=sim.spawn(driver()))
    # Drain: after sync, nothing dirty and the daemon healed nothing.
    sim.run(until=sim.spawn(cache.sync()))
    assert cache.dirty_pages == 0
    assert cache.stats.counter_resyncs == 0


@settings(max_examples=40, deadline=None)
@given(io_programs(), io_programs())
def test_concurrent_programs_keep_counters_consistent(ops_a, ops_b):
    """Two interleaved I/O processes must not desync the dirty counter
    (regression: a read's fill used to clobber concurrent dirty pages)."""
    sim = Simulator()
    dev = BlockDevice(sim, RAMDISK)
    cache = PageCache(sim, dev, PageCacheParams(size_bytes=128 * KB,
                                                dirty_ratio=0.5))

    def driver(ops):
        for kind, offset, nbytes in ops:
            if kind in ("write", "mmap_write"):
                origin = "mmap" if kind == "mmap_write" else "write"
                yield from cache.write(offset, nbytes, origin=origin)
            elif kind == "read":
                yield from cache.read(offset, nbytes)
            elif kind == "discard":
                cache.discard(offset, nbytes)
            else:
                yield from cache.sync()

    pa = sim.spawn(driver(ops_a))
    pb = sim.spawn(driver(ops_b))
    sim.run(until=sim.all_of([pa, pb]))
    check(cache)
    assert cache.stats.counter_resyncs == 0
