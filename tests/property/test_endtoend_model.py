"""Full-stack model checking: the cluster vs a reference dict.

A single client runs a random program of set/add/replace/get/delete
through the entire stack (engine, wire, credits, server workers, slab
manager, SSD spill). With ample SSD the hybrid design never loses data,
so the observable results must match a plain dict executing the same
program — for every single operation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_cluster, profiles
from repro.storage.params import PageCacheParams, RAMDISK
from repro.units import KB, MB


@st.composite
def programs(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["set", "add", "replace", "get", "delete"]))
        key = draw(st.integers(min_value=0, max_value=12))
        size = draw(st.sampled_from([512, 4 * KB, 30 * KB]))
        ops.append((kind, key, size))
    return ops


@settings(max_examples=30, deadline=None)
@given(programs())
def test_cluster_matches_reference_model(program):
    cluster = build_cluster(
        profiles.H_RDMA_OPT_NONB_I,
        server_mem=2 * MB, ssd_limit=64 * MB,  # spill likely, loss not
        device=RAMDISK,
        pagecache=PageCacheParams(size_bytes=8 * MB))
    cluster.backend.default_value_length = 0  # misses stay misses
    client = cluster.clients[0]
    sim = cluster.sim
    model: dict[bytes, int] = {}
    failures: list[str] = []

    def expect(cond, msg):
        if not cond:
            failures.append(msg)

    def app(sim):
        for step, (kind, k, size) in enumerate(program):
            key = b"key%d" % k
            if kind == "set":
                r = yield from client.set(key, size)
                expect(r.status == "STORED", f"{step}: set -> {r.status}")
                model[key] = size
            elif kind == "add":
                r = yield from client.add(key, size)
                if key in model:
                    expect(r.status == "NOT_STORED",
                           f"{step}: add existing -> {r.status}")
                else:
                    expect(r.status == "STORED",
                           f"{step}: add fresh -> {r.status}")
                    model[key] = size
            elif kind == "replace":
                r = yield from client.replace(key, size)
                if key in model:
                    expect(r.status == "STORED",
                           f"{step}: replace -> {r.status}")
                    model[key] = size
                else:
                    expect(r.status == "NOT_STORED",
                           f"{step}: replace absent -> {r.status}")
            elif kind == "get":
                r = yield from client.get(key)
                if key in model:
                    expect(r.status == "HIT",
                           f"{step}: get -> {r.status}")
                    expect(r.value_length == model[key],
                           f"{step}: get len {r.value_length} "
                           f"!= {model[key]}")
                else:
                    expect(r.status == "MISS",
                           f"{step}: get absent -> {r.status}")
            else:
                r = yield from client.delete(key)
                if key in model:
                    expect(r.status == "DELETED",
                           f"{step}: delete -> {r.status}")
                    del model[key]
                else:
                    expect(r.status == "NOT_FOUND",
                           f"{step}: delete absent -> {r.status}")
        # Final sweep: every model key readable with the right size.
        for key, size in model.items():
            r = yield from client.get(key)
            expect(r.status == "HIT" and r.value_length == size,
                   f"final: {key!r} -> {r.status}/{r.value_length}")

    sim.run(until=sim.spawn(app(sim)))
    assert not failures, failures
    assert cluster.total_items == len(model)
