"""Fast lane vs. legacy heap: the two scheduling paths must be
indistinguishable.

The same-time fast lane (see ``repro.sim.engine``) reorders nothing by
construction; these properties check that claim from the outside by
running randomized process/store/timeout programs — and the PR 2 crash
scenario — under both paths and requiring identical traces.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Mailbox, Simulator, Store

# Delays chosen to exercise both queues: zero (lane), sub-microsecond
# (heap), and values that collide at one timestamp across processes.
DELAYS = [0.0, 1e-6, 1.5e-6, 2e-6, 1e-3]

action = st.one_of(
    st.tuples(st.just("timeout"), st.sampled_from(range(len(DELAYS)))),
    st.tuples(st.just("put"), st.sampled_from([0, 1]), st.integers(0, 99)),
    st.tuples(st.just("get"), st.sampled_from([0, 1])),
    st.tuples(st.just("mput"), st.integers(0, 99)),
    st.tuples(st.just("mget")),
    st.tuples(st.just("event")),
    st.tuples(st.just("spawn"), st.lists(
        st.sampled_from(range(len(DELAYS))), min_size=1, max_size=3)),
    st.tuples(st.just("allof"), st.sampled_from([0, 1, 2])),
    st.tuples(st.just("anyof"), st.sampled_from([0, 1, 2])),
    st.tuples(st.just("interrupt"), st.sampled_from(range(len(DELAYS)))),
)

programs = st.lists(
    st.lists(action, min_size=1, max_size=8), min_size=1, max_size=5)


def _execute(program, fast_lane):
    sim = Simulator(fast_lane=fast_lane)
    stores = [Store(sim, capacity=2), Store(sim)]
    mailbox = Mailbox(sim)
    trace = []

    def child(pid, delays):
        for i, d in enumerate(delays):
            yield sim.timeout(DELAYS[d])
            trace.append((sim.now, pid, "child", i))

    def sleeper(pid):
        try:
            yield sim.timeout(10.0)
            trace.append((sim.now, pid, "sleeper-done", None))
        except Exception as exc:
            trace.append((sim.now, pid, "interrupted", type(exc).__name__))

    def proc(pid, actions):
        for i, act in enumerate(actions):
            kind = act[0]
            if kind == "timeout":
                yield sim.timeout(DELAYS[act[1]])
                trace.append((sim.now, pid, "timeout", i))
            elif kind == "put":
                yield stores[act[1]].put(act[2])
                trace.append((sim.now, pid, "put", act[2]))
            elif kind == "get":
                value = yield stores[act[1]].get()
                trace.append((sim.now, pid, "get", value))
            elif kind == "mput":
                mailbox.put(act[1])
                trace.append((sim.now, pid, "mput", act[1]))
            elif kind == "mget":
                value = yield mailbox.get()
                trace.append((sim.now, pid, "mget", value))
            elif kind == "event":
                ev = sim.event()
                ev.succeed((pid, i))
                value = yield ev
                trace.append((sim.now, pid, "event", value))
            elif kind == "spawn":
                p = sim.spawn(child(pid, act[1]), name=f"child-{pid}-{i}")
                trace.append((sim.now, pid, "spawned", i))
                yield p
                trace.append((sim.now, pid, "joined", i))
            elif kind in ("allof", "anyof"):
                events = [sim.timeout(DELAYS[j]) for j in range(act[1] + 1)]
                cond = AllOf(sim, events) if kind == "allof" \
                    else AnyOf(sim, events)
                values = yield cond
                trace.append((sim.now, pid, kind, len(values)))
            elif kind == "interrupt":
                victim = sim.spawn(sleeper(pid), name=f"sleeper-{pid}-{i}")
                yield sim.timeout(DELAYS[act[1]])
                if victim.is_alive:
                    victim.interrupt((pid, i))
                trace.append((sim.now, pid, "interrupt", i))

    for pid, actions in enumerate(program):
        sim.spawn(proc(pid, actions), name=f"proc-{pid}")
    sim.run()
    return trace, sim.now, sim.events_processed


@given(programs)
@settings(max_examples=60, deadline=None)
def test_random_programs_trace_identically(program):
    fast = _execute(program, fast_lane=True)
    legacy = _execute(program, fast_lane=False)
    assert fast == legacy


def test_fast_lane_flag_is_respected():
    assert Simulator(fast_lane=True).fast_lane
    assert not Simulator(fast_lane=False).fast_lane


def test_crash_scenario_chrome_trace_is_byte_identical_across_paths():
    """The PR 2 crash-1-of-4 fault scenario replays byte-identically
    whether events flow through the fast lane or the legacy heap."""
    from repro.core.cluster import ClusterSpec, ReplicationConfig
    from repro.core.profiles import H_RDMA_OPT_NONB_I
    from repro.faults import FaultPlan
    from repro.harness.runner import run_workload, setup_cluster
    from repro.obs.export import chrome_trace_events
    from repro.units import KB, MB, MS
    from repro.workloads.generator import WorkloadSpec

    def traced(fast_lane):
        spec = WorkloadSpec(num_ops=120, num_keys=256, value_length=8 * KB,
                            read_fraction=0.5, seed=9)
        cluster_spec = ClusterSpec(
            num_servers=4, num_clients=1, server_mem=16 * MB,
            ssd_limit=64 * MB,
            replication=ReplicationConfig(router="ketama"),
            request_timeout=2 * MS, trace=True)
        cluster = setup_cluster(H_RDMA_OPT_NONB_I, spec,
                                cluster_spec=cluster_spec,
                                sim=Simulator(fast_lane=fast_lane))
        run_workload(cluster, spec,
                     fault_plan=FaultPlan.parse(["crash:server=1,at=200us"]))
        return json.dumps(chrome_trace_events(cluster.obs.tracer),
                          sort_keys=True)

    assert traced(True) == traced(False)
