"""Property-based tests: hybrid slab manager state consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.hybrid import HybridSlabManager
from repro.sim import Simulator
from repro.storage.device import BlockDevice
from repro.storage.params import PageCacheParams, RAMDISK
from repro.units import KB, MB


def check_consistency(mgr: HybridSlabManager) -> None:
    """Every table entry lives in exactly one place; counts agree."""
    ram = 0
    ssd = 0
    for key, item in mgr.table.items():
        assert item.key == key
        if item.in_ram:
            ram += 1
            assert item.page is not None
            assert item.page.items.get(item.chunk_index) is item
        elif item.on_ssd:
            ssd += 1
            assert item.disk_slot is not None
            assert item in item.disk_slot.items
            assert item.disk_slot.slot_id in mgr._live_slots
        else:  # pragma: no cover - would be a bug
            raise AssertionError(f"dead item in table: {item!r}")
    assert ram == mgr.items_in_ram
    # Slots may also hold items superseded in the table; live items on
    # SSD are a subset of all slot entries.
    assert ssd <= mgr.items_on_ssd
    # LRU lists contain exactly the RAM-resident items.
    for cls in mgr.allocator.classes:
        for it in cls.lru:
            assert it.in_ram and it.clsid == cls.clsid


@st.composite
def kv_programs(draw):
    n = draw(st.integers(min_value=1, max_value=100))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["set", "get", "delete"]))
        key = draw(st.integers(min_value=0, max_value=25))
        size = draw(st.sampled_from([1 * KB, 8 * KB, 30 * KB, 100 * KB]))
        ops.append((kind, key, size))
    return ops


def run_program(mgr, sim, ops):
    def driver():
        for kind, key, size in ops:
            kb = b"key%d" % key
            if kind == "set":
                yield from mgr.store(kb, size)
            elif kind == "get":
                item = mgr.lookup(kb)
                if item is not None:
                    yield from mgr.load_value(item)
                    mgr.touch(item)
            else:
                mgr.delete(kb)
            check_consistency(mgr)

    sim.run(until=sim.spawn(driver()))


@settings(max_examples=40, deadline=None)
@given(kv_programs())
def test_hybrid_manager_consistency(ops):
    sim = Simulator()
    dev = BlockDevice(sim, RAMDISK)
    mgr = HybridSlabManager(
        sim, mem_limit=1 * MB, device=dev, ssd_limit=8 * MB,
        io_policy="adaptive",
        pagecache_params=PageCacheParams(size_bytes=4 * MB))
    run_program(mgr, sim, ops)
    # Page-cache counter never desynced (daemon would have healed it).
    assert mgr.pagecache.stats.counter_resyncs == 0


@settings(max_examples=40, deadline=None)
@given(kv_programs())
def test_inmemory_manager_consistency(ops):
    sim = Simulator()
    mgr = HybridSlabManager(sim, mem_limit=1 * MB)
    run_program(mgr, sim, ops)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 60),
                          st.sampled_from([4 * KB, 30 * KB])),
                min_size=1, max_size=120))
def test_hybrid_never_loses_data_with_ample_ssd(pairs):
    """With SSD >> data, every stored key must remain retrievable."""
    sim = Simulator()
    dev = BlockDevice(sim, RAMDISK)
    mgr = HybridSlabManager(
        sim, mem_limit=1 * MB, device=dev, ssd_limit=64 * MB,
        io_policy="adaptive",
        pagecache_params=PageCacheParams(size_bytes=4 * MB))

    def driver():
        for key, size in pairs:
            yield from mgr.store(b"key%d" % key, size)

    sim.run(until=sim.spawn(driver()))
    for key, _ in pairs:
        assert mgr.lookup(b"key%d" % key) is not None


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=200))
def test_preload_equivalent_retention(keys):
    """preload() retains exactly what store() would retain (hybrid)."""
    def build(use_preload):
        sim = Simulator()
        dev = BlockDevice(sim, RAMDISK)
        mgr = HybridSlabManager(
            sim, mem_limit=1 * MB, device=dev, ssd_limit=32 * MB,
            io_policy="adaptive",
            pagecache_params=PageCacheParams(size_bytes=4 * MB))
        if use_preload:
            for k in keys:
                mgr.preload(b"k%d" % k, 30 * KB)
        else:
            def driver():
                for k in keys:
                    yield from mgr.store(b"k%d" % k, 30 * KB)
            sim.run(until=sim.spawn(driver()))
        return mgr

    a, b = build(True), build(False)
    assert set(a.table) == set(b.table)
    assert a.items_in_ram == b.items_in_ram
