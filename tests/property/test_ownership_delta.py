"""Ownership-delta property: why elastic clusters want ketama.

When the ring grows N -> N+1, consistent hashing (ketama) relocates
roughly 1/(N+1) of the keyspace — only the share the new server takes —
while modulo placement reshuffles almost everything. The migration
engine works for both, but the moved-item volume (and so the handoff
window) differs by an order of magnitude; these properties pin that
contrast and the router ownership() accounting it is computed from.
"""

import pytest

from repro.client.hashing import KetamaRouter, ModuloRouter, make_router

SAMPLE = [b"key:%05d" % i for i in range(4000)]


def moved_fraction(router_name, n):
    old = make_router(router_name, n)
    new = make_router(router_name, n + 1)
    moved = sum(1 for k in SAMPLE
                if old.server_for(k) != new.server_for(k))
    return moved / len(SAMPLE)


class TestOwnershipAccounting:
    @pytest.mark.parametrize("router_name", ["ketama", "modulo"])
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_ownership_sums_to_one(self, router_name, n):
        shares = make_router(router_name, n).ownership()
        assert sum(shares) == pytest.approx(1.0)
        assert all(s > 0 for s in shares)

    @pytest.mark.parametrize("router_name", ["ketama", "modulo"])
    def test_excluded_server_owns_nothing(self, router_name):
        router = make_router(router_name, 4)
        alive = frozenset({0, 1, 3})
        shares = router.ownership(alive)
        assert shares[2] == 0.0
        assert sum(shares) == pytest.approx(1.0)

    @pytest.mark.parametrize("router_name", ["ketama", "modulo"])
    def test_ownership_matches_sampled_placement(self, router_name):
        router = make_router(router_name, 4)
        shares = router.ownership()
        counts = [0] * 4
        for key in SAMPLE:
            counts[router.server_for(key)] += 1
        for idx in range(4):
            assert counts[idx] / len(SAMPLE) == \
                pytest.approx(shares[idx], abs=0.05)


class TestGrowthDelta:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_ketama_moves_about_one_share(self, n):
        frac = moved_fraction("ketama", n)
        # Ideal is 1/(n+1); allow generous ring-imbalance slack.
        assert frac < 2.5 / (n + 1)
        assert frac > 0.0

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_modulo_reshuffles_most_of_the_keyspace(self, n):
        # n residues map to n+1: all but ~1/(n+1) of keys change slot.
        assert moved_fraction("modulo", n) > 0.5

    def test_ketama_beats_modulo(self):
        # Ideal fractions are 1/(n+1) vs n/(n+1): the gap widens with n.
        assert moved_fraction("ketama", 2) < moved_fraction("modulo", 2)
        for n in (4, 8):
            assert moved_fraction("ketama", n) \
                < moved_fraction("modulo", n) / 2


class TestRouterClasses:
    def test_make_router_dispatch(self):
        assert isinstance(make_router("ketama", 3), KetamaRouter)
        assert isinstance(make_router("modulo", 3), ModuloRouter)
