"""TrafficShape: deterministic time-varying request pacing.

The shapes are pure functions of simulated time — no RNG, no state —
so paced runs replay byte-identically and the shape can be sampled
anywhere without ordering effects.
"""

import math

import pytest

from repro.workloads.traffic import TRAFFIC_SHAPES, TrafficShape, make_traffic


class TestValidation:
    def test_kind_checked(self):
        with pytest.raises(ValueError):
            TrafficShape(kind="tsunami")

    def test_base_interval_positive(self):
        with pytest.raises(ValueError):
            TrafficShape(base_interval=0.0)

    def test_amplitude_bounded(self):
        with pytest.raises(ValueError):
            TrafficShape(kind="diurnal", amplitude=1.0)
        with pytest.raises(ValueError):
            TrafficShape(kind="diurnal", amplitude=-0.1)

    def test_spike_factor_positive(self):
        with pytest.raises(ValueError):
            TrafficShape(kind="spike", spike_factor=0.0)

    def test_make_traffic_names(self):
        for name in TRAFFIC_SHAPES:
            assert make_traffic(name).kind == name
        with pytest.raises(ValueError):
            make_traffic("nope")


class TestSteady:
    def test_constant_rate(self):
        shape = make_traffic("steady", base_interval=10e-6)
        for t in (0.0, 1e-3, 7.3):
            assert shape.rate_multiplier(t) == 1.0
            assert shape.interval_at(t) == 10e-6


class TestDiurnal:
    def test_sinusoid_peaks_and_troughs(self):
        shape = make_traffic("diurnal", base_interval=10e-6,
                             period=8e-3, amplitude=0.5)
        quarter = shape.period / 4
        assert shape.rate_multiplier(0.0) == pytest.approx(1.0)
        assert shape.rate_multiplier(quarter) == pytest.approx(1.5)
        assert shape.rate_multiplier(3 * quarter) == pytest.approx(0.5)
        # Faster arrival at the peak => shorter interval.
        assert shape.interval_at(quarter) < shape.interval_at(3 * quarter)

    def test_multiplier_stays_positive(self):
        shape = make_traffic("diurnal", amplitude=0.9)
        lo = min(shape.rate_multiplier(i * shape.period / 100)
                 for i in range(200))
        assert lo > 0.0

    def test_periodic(self):
        shape = make_traffic("diurnal")
        t = 1.234e-3
        assert shape.rate_multiplier(t) == \
            pytest.approx(shape.rate_multiplier(t + shape.period))


class TestSpike:
    def test_flash_crowd_window(self):
        shape = make_traffic("spike", base_interval=20e-6, spike_at=2e-3,
                             spike_duration=1e-3, spike_factor=8.0)
        assert shape.rate_multiplier(1e-3) == 1.0
        assert shape.rate_multiplier(2.5e-3) == 8.0
        assert shape.rate_multiplier(3.5e-3) == 1.0
        assert shape.interval_at(2.5e-3) == pytest.approx(20e-6 / 8.0)


class TestPurity:
    def test_same_time_same_answer(self):
        # No hidden state: re-querying any instant is idempotent, and
        # ordering of queries does not matter.
        shape = make_traffic("diurnal", amplitude=0.7)
        times = [i * 1e-4 for i in range(50)]
        forward = [shape.interval_at(t) for t in times]
        backward = [shape.interval_at(t) for t in reversed(times)]
        assert forward == list(reversed(backward))
        assert math.isfinite(sum(forward))
