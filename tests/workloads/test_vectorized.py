"""Vectorized generation must reproduce the per-op-loop streams exactly.

The vectorized ``generate_ops`` / ``generate_ycsb_ops`` draw from the
same RNG streams in the same order as the original loops (kept as
``_generate_ops_ref`` / ``_generate_ycsb_ops_ref``), so every generated
stream must match op-for-op, field-for-field.
"""

import pickle

import numpy as np
import pytest

from repro.units import KB
from repro.workloads.generator import (
    Op,
    WorkloadSpec,
    _generate_ops_ref,
    generate_ops,
    make_dataset,
)
from repro.workloads.keyspace import Keyspace
from repro.workloads.ycsb import (
    CORE_WORKLOADS,
    YCSBWorkload,
    _generate_ycsb_ops_ref,
    generate_ycsb_ops,
)


class TestGenerateOpsEquivalence:
    @pytest.mark.parametrize("pattern", ["basic", "counter", "ttl-churn",
                                         "hot-storm"])
    @pytest.mark.parametrize("distribution", ["zipf", "uniform"])
    def test_patterns_match_reference(self, pattern, distribution):
        spec = WorkloadSpec(num_ops=400, num_keys=128, value_length=256,
                            read_fraction=0.6, distribution=distribution,
                            seed=7, pattern=pattern, ttl=0.02)
        for ci in (0, 1, 3):
            assert generate_ops(spec, client_index=ci) == \
                _generate_ops_ref(spec, client_index=ci)

    def test_stream_offset_and_size_mixture(self):
        spec = WorkloadSpec(num_ops=300, num_keys=64, value_length=1 * KB,
                            seed=3, value_sizes=((512, 0.8), (4 * KB, 0.2)))
        assert generate_ops(spec, client_index=2, stream_offset=13) == \
            _generate_ops_ref(spec, client_index=2, stream_offset=13)

    def test_read_fraction_extremes(self):
        for rf in (0.0, 1.0):
            spec = WorkloadSpec(num_ops=100, num_keys=32, value_length=64,
                                read_fraction=rf, seed=11)
            assert generate_ops(spec) == _generate_ops_ref(spec)


class TestGenerateYcsbEquivalence:
    @pytest.mark.parametrize("name", sorted(CORE_WORKLOADS))
    def test_core_workloads_match_reference(self, name):
        wl = CORE_WORKLOADS[name]
        for ci in (0, 2):
            assert generate_ycsb_ops(wl, 400, 128, 512, seed=42,
                                     client_index=ci) == \
                _generate_ycsb_ops_ref(wl, 400, 128, 512, seed=42,
                                       client_index=ci)

    def test_latest_without_inserts_hits_fast_path(self):
        # A custom latest-skewed mix with no inserts exercises the
        # vectorized newest-first indexing.
        wl = YCSBWorkload("DL", read_fraction=0.9, update_fraction=0.1,
                          distribution="latest")
        assert generate_ycsb_ops(wl, 300, 64, 256, seed=5) == \
            _generate_ycsb_ops_ref(wl, 300, 64, 256, seed=5)


class TestHotStorm:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_ops=10, num_keys=8, value_length=8,
                         pattern="hot-storm", storm_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(num_ops=10, num_keys=8, value_length=8,
                         pattern="hot-storm", storm_phase_ops=0)

    def test_storm_concentrates_on_shared_key_per_phase(self):
        spec = WorkloadSpec(num_ops=400, num_keys=512, value_length=64,
                            seed=9, pattern="hot-storm",
                            storm_fraction=0.5, storm_phase_ops=100)
        streams = [generate_ops(spec, client_index=i) for i in range(3)]
        # Within each phase there is one storm key, identical across
        # clients, and it absorbs roughly storm_fraction of the ops.
        for phase in range(4):
            sl = slice(phase * 100, (phase + 1) * 100)
            top = []
            for ops in streams:
                keys = [op.key for op in ops[sl]]
                hot, count = max(((k, keys.count(k)) for k in set(keys)),
                                 key=lambda kv: kv[1])
                assert count >= 30  # ~50 expected of 100
                top.append(hot)
            assert len(set(top)) == 1, "clients must mob the same key"

    def test_storm_key_rotates_between_phases(self):
        spec = WorkloadSpec(num_ops=600, num_keys=4096, value_length=64,
                            seed=21, pattern="hot-storm",
                            storm_fraction=0.6, storm_phase_ops=200)
        ops = generate_ops(spec)
        hot_keys = []
        for phase in range(3):
            keys = [op.key for op in ops[phase * 200:(phase + 1) * 200]]
            hot_keys.append(max(set(keys), key=keys.count))
        assert len(set(hot_keys)) > 1, "storm key should rotate"

    def test_zero_storm_fraction_is_basic(self):
        base = WorkloadSpec(num_ops=200, num_keys=64, value_length=64,
                            seed=4)
        storm = WorkloadSpec(num_ops=200, num_keys=64, value_length=64,
                             seed=4, pattern="hot-storm",
                             storm_fraction=0.0)
        assert generate_ops(storm) == generate_ops(base)


class TestBulkKeyMaterialization:
    def test_keys_for_matches_scalar_key(self):
        ks = Keyspace(100)
        idx = np.array([3, 97, 3, 0, 42, 97])
        assert ks.keys_for(idx) == [ks.key(int(i)) for i in idx]

    def test_keys_for_bounds(self):
        ks = Keyspace(10)
        with pytest.raises(IndexError):
            ks.keys_for(np.array([0, 10]))
        with pytest.raises(IndexError):
            ks.keys_for(np.array([-1, 3]))
        assert ks.keys_for(np.array([], dtype=np.int64)) == []

    def test_make_dataset_unchanged(self):
        spec = WorkloadSpec(num_ops=10, num_keys=16, value_length=128,
                            seed=2, value_sizes=((64, 0.5), (256, 0.5)))
        ks = Keyspace(16)
        data = make_dataset(spec)
        assert [k for k, _ in data] == [ks.key(i) for i in range(16)]
        assert all(v in (64, 256) for _, v in data)


class TestSlots:
    def test_hot_dataclasses_have_no_dict(self):
        op = Op("get", b"k", 8)
        assert not hasattr(op, "__dict__")
        from repro.client.request import OpRecord, ReqResult
        rr = ReqResult(op="get", api="get", status="HIT", value_length=8,
                       latency=1e-6, blocked_time=0.0)
        assert not hasattr(rr, "__dict__")
        assert rr.ok and rr.hit
        rec = OpRecord(op="get", api="get", key_length=1, value_length=8,
                       status="HIT", t_issue=0.0, t_complete=1e-6,
                       blocked_time=0.0)
        assert not hasattr(rec, "__dict__")
        from repro.consistency.history import HistoryEvent
        ev = HistoryEvent(client="c0", req_id=1, op="get", api="get",
                          key="k", status="HIT", cas_token=0,
                          value_length=8, t_issue=0.0, t_complete=1.0,
                          server=0, user=True)
        assert not hasattr(ev, "__dict__")

    def test_op_still_pickles(self):
        # The sharded mp runtime ships op streams to workers.
        op = Op("scan", b"key:0", 64, keys=(b"key:0", b"key:1"))
        assert pickle.loads(pickle.dumps(op)) == op
