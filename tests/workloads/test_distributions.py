"""Tests for the Zipf/uniform samplers."""

import numpy as np
import pytest

from repro.workloads.distributions import UniformSampler, ZipfSampler, make_sampler


class TestUniform:
    def test_range(self):
        s = UniformSampler(100, seed=1)
        draws = s.sample(10_000)
        assert draws.min() >= 0 and draws.max() < 100

    def test_roughly_flat(self):
        s = UniformSampler(10, seed=2)
        draws = s.sample(50_000)
        counts = np.bincount(draws, minlength=10)
        assert counts.min() > 4_000 and counts.max() < 6_000

    def test_seeded_determinism(self):
        a = UniformSampler(1000, seed=7).sample(100)
        b = UniformSampler(1000, seed=7).sample(100)
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformSampler(0)


class TestZipf:
    def test_range(self):
        s = ZipfSampler(500, theta=0.99, seed=1)
        draws = s.sample(10_000)
        assert draws.min() >= 0 and draws.max() < 500

    def test_skew_concentrates_mass(self):
        s = ZipfSampler(10_000, theta=0.99, seed=3)
        draws = s.sample(50_000)
        counts = np.bincount(draws, minlength=10_000)
        top = np.sort(counts)[::-1][:1000].sum()  # hottest 10% of keys
        assert top / 50_000 > 0.5

    def test_higher_theta_more_skew(self):
        def top_mass(theta):
            s = ZipfSampler(5_000, theta=theta, seed=5)
            draws = s.sample(30_000)
            counts = np.bincount(draws, minlength=5_000)
            return np.sort(counts)[::-1][:500].sum()

        assert top_mass(1.2) > top_mass(0.6)

    def test_hot_keys_scattered_over_keyspace(self):
        """Scrambling: the hottest key should (almost surely) not be 0."""
        s = ZipfSampler(10_000, theta=0.99, seed=11)
        draws = s.sample(20_000)
        counts = np.bincount(draws, minlength=10_000)
        hot = np.argsort(counts)[::-1][:10]
        assert hot.mean() > 100  # not clustered at the low indices

    def test_hot_fraction_helper(self):
        s = ZipfSampler(1_000, theta=0.99, seed=1)
        assert 0.5 < s.hot_fraction(0.1) < 1.0
        assert s.hot_fraction(1.0) == pytest.approx(1.0)

    def test_seeded_determinism(self):
        a = ZipfSampler(1000, theta=0.9, seed=9).sample(50)
        b = ZipfSampler(1000, theta=0.9, seed=9).sample(50)
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, theta=0.0)


def test_make_sampler_factory():
    assert isinstance(make_sampler("zipf", 10), ZipfSampler)
    assert isinstance(make_sampler("uniform", 10), UniformSampler)
    with pytest.raises(ValueError):
        make_sampler("gaussian", 10)
