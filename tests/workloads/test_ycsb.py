"""Tests for the YCSB core-workload presets."""

import pytest

from repro.units import KB, MB
from repro.workloads.ycsb import (
    CORE_WORKLOADS,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    YCSBWorkload,
    generate_ycsb_ops,
)


def gen(workload, n=4000, keys=500):
    return generate_ycsb_ops(workload, num_ops=n, num_keys=keys,
                             value_length=1 * KB, seed=7)


class TestPresets:
    def test_all_core_workloads_present(self):
        assert set(CORE_WORKLOADS) == {"A", "B", "C", "D", "E", "F"}

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            YCSBWorkload("broken", read_fraction=0.5, update_fraction=0.1)

    def test_a_mix(self):
        ops = gen(WORKLOAD_A)
        reads = sum(1 for o in ops if o.kind == "get")
        assert 0.45 < reads / len(ops) < 0.55

    def test_b_mix(self):
        ops = gen(WORKLOAD_B)
        reads = sum(1 for o in ops if o.kind == "get")
        assert 0.92 < reads / len(ops) < 0.98

    def test_c_read_only(self):
        assert all(o.kind == "get" for o in gen(WORKLOAD_C))

    def test_e_mix_and_scan_shape(self):
        ops = gen(WORKLOAD_E)
        scans = [o for o in ops if o.kind == "scan"]
        assert 0.92 < len(scans) / len(ops) < 0.98
        inserts = sum(1 for o in ops if o.kind == "set")
        assert 0.02 < inserts / len(ops) < 0.08
        for o in scans:
            assert 1 <= len(o.keys) <= WORKLOAD_E.max_scan_len
            assert o.key == o.keys[0]

    def test_f_has_rmw(self):
        ops = gen(WORKLOAD_F)
        rmw = sum(1 for o in ops if o.kind == "rmw")
        assert 0.45 < rmw / len(ops) < 0.55

    def test_d_inserts_fresh_keys(self):
        ops = gen(WORKLOAD_D)
        inserts = [o for o in ops
                   if o.kind == "set" and o.key.startswith(b"ins:")]
        assert 0.03 < len(inserts) / len(ops) < 0.07
        # Reads may also hit freshly inserted records (read-latest).
        assert any(o.kind == "get" and o.key.startswith(b"ins:")
                   for o in ops)

    def test_d_reads_skew_to_latest(self):
        ops = gen(WORKLOAD_D, n=8000, keys=1000)
        read_keys = [o.key for o in ops
                     if o.kind == "get" and not o.key.startswith(b"ins:")]
        # "latest": high key indices (loaded last) dominate reads.
        indices = [int(k.split(b":")[1]) for k in read_keys]
        assert sum(1 for i in indices if i > 500) > len(indices) * 0.6

    def test_deterministic(self):
        assert gen(WORKLOAD_A) == gen(WORKLOAD_A)

    def test_clients_decorrelated(self):
        a = generate_ycsb_ops(WORKLOAD_A, 200, 100, 1 * KB, seed=7,
                              client_index=0)
        b = generate_ycsb_ops(WORKLOAD_A, 200, 100, 1 * KB, seed=7,
                              client_index=1)
        assert a != b


class TestOnCluster:
    @pytest.mark.parametrize("workload", [WORKLOAD_A, WORKLOAD_D,
                                          WORKLOAD_F])
    def test_runs_to_completion(self, workload):
        from repro.core.profiles import H_RDMA_OPT_NONB_I
        from repro.harness.runner import run_ops, setup_cluster
        from repro.workloads.generator import WorkloadSpec

        spec = WorkloadSpec(num_ops=1, num_keys=128, value_length=4 * KB)
        cluster = setup_cluster(H_RDMA_OPT_NONB_I, spec,
                                server_mem=16 * MB, ssd_limit=32 * MB)
        ops = generate_ycsb_ops(workload, num_ops=120, num_keys=128,
                                value_length=4 * KB, seed=3)
        result = run_ops(cluster, [ops])
        # rmw ops expand into a read + a write record.
        rmw = sum(1 for o in ops if o.kind == "rmw")
        assert result.ops == 120 + rmw
        assert all(c.outstanding_count == 0 for c in cluster.clients)

    def test_rmw_blocking_driver(self):
        from repro.core.profiles import RDMA_MEM
        from repro.harness.runner import run_ops, setup_cluster
        from repro.workloads.generator import Op, WorkloadSpec

        spec = WorkloadSpec(num_ops=1, num_keys=16, value_length=1 * KB)
        cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
        ops = [Op("rmw", b"key:0000000001", 1 * KB)]
        result = run_ops(cluster, [ops])
        assert result.ops == 2  # one get + one set
        kinds = sorted(r.op for r in result.records)
        assert kinds == ["get", "set"]
