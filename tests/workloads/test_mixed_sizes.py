"""Tests for weighted value-size mixtures in workloads."""

import pytest

from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec, generate_ops, make_dataset

MIX = ((512, 0.7), (64 * KB, 0.3))


def spec(**kw):
    defaults = dict(num_ops=2000, num_keys=600, value_length=8 * KB,
                    value_sizes=MIX, seed=9)
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestSpec:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            spec(value_sizes=((512, 0.5), (1024, 0.2)))
        with pytest.raises(ValueError):
            spec(value_sizes=())

    def test_sizes_assigned_per_key_stably(self):
        s = spec()
        sizes = [s.size_of_index(i) for i in range(600)]
        assert set(sizes) == {512, 64 * KB}
        assert sizes == [s.size_of_index(i) for i in range(600)]

    def test_mixture_respects_weights(self):
        s = spec(num_keys=5000)
        small = sum(1 for i in range(5000) if s.size_of_index(i) == 512)
        assert 0.65 < small / 5000 < 0.75

    def test_total_bytes_reflects_mixture(self):
        s = spec()
        assert s.total_bytes == sum(s.size_of_index(i) for i in range(600))

    def test_value_length_for_parses_keys(self):
        s = spec()
        pairs = make_dataset(s)
        for key, size in pairs[:50]:
            assert s.value_length_for(key) == size
        # Unknown key shapes fall back to the scalar default.
        assert s.value_length_for(b"ins:001:0000000001") == 8 * KB
        assert s.value_length_for(b"weird") == 8 * KB

    def test_single_size_unchanged(self):
        s = spec(value_sizes=None)
        assert s.total_bytes == 600 * 8 * KB
        assert s.value_length_for(b"key:0000000003") == 8 * KB


class TestOps:
    def test_op_sizes_match_key_assignment(self):
        s = spec()
        ops = generate_ops(s)
        for op in ops:
            assert op.value_length == s.value_length_for(op.key)

    def test_dataset_and_ops_agree(self):
        s = spec()
        sizes = dict(make_dataset(s))
        for op in generate_ops(s):
            assert sizes[op.key] == op.value_length


class TestOnCluster:
    def test_mixed_sizes_populate_multiple_slab_classes(self):
        from repro.core.profiles import H_RDMA_OPT_NONB_I
        from repro.harness.runner import run_workload, setup_cluster

        s = spec(num_ops=400, num_keys=1200,
                 value_sizes=((512, 0.5), (30 * KB, 0.5)))
        cluster = setup_cluster(H_RDMA_OPT_NONB_I, s, server_mem=8 * MB,
                                ssd_limit=64 * MB)
        mgr = cluster.servers[0].manager
        classes_used = [c for c in mgr.allocator.classes if c.pages]
        assert len(classes_used) >= 2
        # The adaptive policy picks different schemes for the two
        # classes (mmap below the 32 KB cutoff, cached above).
        small = mgr.allocator.class_for(512 + 70)
        large = mgr.allocator.class_for(30 * KB + 70)
        assert mgr.scheme_name_for(small) == "mmap"
        assert mgr.scheme_name_for(large) == "mmap" \
            if large.chunk_size <= 32 * KB else "cached"

        result = run_workload(cluster, s)
        assert result.ops == 400
        assert result.summary["miss_rate"] == 0.0  # hybrid retains all

    def test_miss_repopulation_uses_per_key_size(self):
        from repro.core.profiles import RDMA_MEM
        from repro.harness.runner import setup_cluster

        s = spec(num_keys=300, value_sizes=((1 * KB, 0.5), (16 * KB, 0.5)))
        cluster = setup_cluster(RDMA_MEM, s, preload=False,
                                server_mem=8 * MB)
        client = cluster.clients[0]
        key = make_dataset(s)[7][0]
        expected = s.value_length_for(key)
        out = {}

        def app(sim):
            g = yield from client.get(key)  # miss -> backend -> re-set
            out["first"] = g.status
            g2 = yield from client.get(key)
            out["len"] = g2.value_length

        cluster.sim.run(until=cluster.sim.spawn(app(cluster.sim)))
        assert out["first"] == "MISS"
        assert out["len"] == expected
