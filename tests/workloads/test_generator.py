"""Tests for workload specs, op streams, and the bursty pattern."""

import pytest

from repro.units import KB, MB
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.generator import WorkloadSpec, generate_ops, make_dataset
from repro.workloads.keyspace import Keyspace


class TestKeyspace:
    def test_keys_fixed_width_and_unique(self):
        ks = Keyspace(1000)
        keys = [ks.key(i) for i in range(1000)]
        assert len(set(keys)) == 1000
        assert len({len(k) for k in keys}) == 1  # constant length

    def test_bounds(self):
        ks = Keyspace(10)
        with pytest.raises(IndexError):
            ks.key(10)
        with pytest.raises(IndexError):
            ks.key(-1)
        with pytest.raises(ValueError):
            Keyspace(0)

    def test_all_keys_iterates_everything(self):
        ks = Keyspace(25)
        assert len(list(ks.all_keys())) == 25


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_ops=10, num_keys=10, value_length=10,
                         read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(num_ops=0, num_keys=10, value_length=10)

    def test_total_bytes(self):
        spec = WorkloadSpec(num_ops=1, num_keys=100, value_length=32 * KB)
        assert spec.total_bytes == 100 * 32 * KB


class TestGenerateOps:
    def spec(self, **kw):
        defaults = dict(num_ops=2000, num_keys=500, value_length=8 * KB,
                        read_fraction=0.5, seed=4)
        defaults.update(kw)
        return WorkloadSpec(**defaults)

    def test_count_and_sizes(self):
        ops = generate_ops(self.spec())
        assert len(ops) == 2000
        assert all(op.value_length == 8 * KB for op in ops)

    def test_read_fraction_respected(self):
        ops = generate_ops(self.spec(read_fraction=0.8))
        reads = sum(1 for op in ops if op.kind == "get")
        assert 0.74 < reads / len(ops) < 0.86

    def test_read_only_and_write_only(self):
        assert all(op.kind == "get"
                   for op in generate_ops(self.spec(read_fraction=1.0)))
        assert all(op.kind == "set"
                   for op in generate_ops(self.spec(read_fraction=0.0)))

    def test_deterministic_per_client(self):
        a = generate_ops(self.spec(), client_index=0)
        b = generate_ops(self.spec(), client_index=0)
        assert a == b

    def test_clients_decorrelated(self):
        a = generate_ops(self.spec(), client_index=0)
        b = generate_ops(self.spec(), client_index=1)
        assert a != b

    def test_keys_within_keyspace(self):
        ks = Keyspace(500)
        valid = set(ks.all_keys())
        ops = generate_ops(self.spec())
        assert all(op.key in valid for op in ops)

    def test_make_dataset_covers_keyspace(self):
        spec = self.spec(num_keys=50)
        pairs = make_dataset(spec)
        assert len(pairs) == 50
        assert all(vl == 8 * KB for _, vl in pairs)
        assert len({k for k, _ in pairs}) == 50


class TestBursty:
    def test_geometry(self):
        w = BurstyWorkload(block_size=2 * MB, chunk_size=256 * KB,
                           total_bytes=16 * MB)
        assert w.chunks_per_block == 8
        assert w.num_blocks == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyWorkload(block_size=1 * MB, chunk_size=300 * KB,
                           total_bytes=4 * MB)
        with pytest.raises(ValueError):
            BurstyWorkload(block_size=1 * MB, chunk_size=256 * KB,
                           total_bytes=1 * MB + 5)

    def test_chunk_keys_unique_across_blocks(self):
        w = BurstyWorkload(block_size=1 * MB, chunk_size=256 * KB,
                           total_bytes=4 * MB)
        all_keys = [k for b in range(w.num_blocks) for k in w.chunk_keys(b)]
        assert len(set(all_keys)) == len(all_keys) == 16
        with pytest.raises(IndexError):
            w.chunk_keys(99)

    def test_drivers_roundtrip_on_cluster(self):
        from repro import build_cluster, profiles

        w = BurstyWorkload(block_size=1 * MB, chunk_size=256 * KB,
                           total_bytes=2 * MB)
        cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I, num_servers=2,
                                server_mem=16 * MB, ssd_limit=32 * MB)
        client = cluster.clients[0]
        sim = cluster.sim

        def app(sim):
            for b in range(w.num_blocks):
                yield from w.write_block_nonblocking(client, b)
            for b in range(w.num_blocks):
                yield from w.read_block_nonblocking(client, b)

        sim.run(until=sim.spawn(app(sim)))
        gets = [r for r in client.records if r.op == "get"]
        assert len(gets) == 8
        assert all(r.status == "HIT" for r in gets)

    def test_nonblocking_block_write_faster_than_blocking(self):
        from repro import build_cluster, profiles

        def run(nonblocking):
            w = BurstyWorkload(block_size=2 * MB, chunk_size=256 * KB,
                               total_bytes=2 * MB)
            profile = (profiles.H_RDMA_OPT_NONB_I if nonblocking
                       else profiles.H_RDMA_OPT_BLOCK)
            cluster = build_cluster(profile, num_servers=2,
                                    server_mem=16 * MB, ssd_limit=32 * MB)
            client = cluster.clients[0]
            sim = cluster.sim

            def app(sim):
                if nonblocking:
                    yield from w.write_block_nonblocking(client, 0)
                else:
                    yield from w.write_block_blocking(client, 0)

            sim.run(until=sim.spawn(app(sim)))
            return sim.now

        assert run(True) < run(False)
