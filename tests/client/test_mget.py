"""Tests for the batched multi-get (memcached_mget)."""

import pytest

from repro import build_cluster, profiles
from repro.server.protocol import HIT, MISS
from repro.units import KB, MB


def small_cluster(profile=profiles.H_RDMA_OPT_NONB_I, **kw):
    kw.setdefault("server_mem", 32 * MB)
    kw.setdefault("ssd_limit", 64 * MB)
    return build_cluster(profile, **kw)


def run_app(cluster, gen_fn):
    sim = cluster.sim
    return sim.run(until=sim.spawn(gen_fn(sim)))


def test_mget_returns_in_input_order():
    cluster = small_cluster()
    client = cluster.clients[0]

    def app(sim):
        for i in range(8):
            yield from client.set(f"k{i}".encode(), 4 * KB)
        reqs = yield from client.mget([f"k{i}".encode() for i in range(8)])
        assert [r.key for r in reqs] == [f"k{i}".encode() for i in range(8)]
        assert all(r.status == HIT for r in reqs)
        assert all(r.value_length == 4 * KB for r in reqs)

    run_app(cluster, app)


def test_mget_mixes_hits_and_misses():
    cluster = small_cluster(profiles.RDMA_MEM)
    cluster.backend.default_value_length = 0  # no repopulation value
    client = cluster.clients[0]

    def app(sim):
        yield from client.set(b"present", 1 * KB)
        reqs = yield from client.mget([b"present", b"absent"])
        assert reqs[0].status == HIT
        assert reqs[1].status == MISS

    run_app(cluster, app)


def test_mget_miss_pays_backend_penalty():
    from repro.units import MS

    cluster = small_cluster(profiles.RDMA_MEM)
    cluster.backend.default_value_length = 1 * KB
    client = cluster.clients[0]

    def app(sim):
        reqs = yield from client.mget([b"absent"])
        assert reqs[0].stages["miss_penalty"] == pytest.approx(2 * MS)
        again = yield from client.get(b"absent")
        assert again.status == HIT  # repopulated

    run_app(cluster, app)


def test_mget_spans_servers():
    cluster = small_cluster(num_servers=4)
    client = cluster.clients[0]

    def app(sim):
        keys = [f"key{i}".encode() for i in range(32)]
        for k in keys:
            yield from client.set(k, 2 * KB)
        reqs = yield from client.mget(keys)
        assert all(r.status == HIT for r in reqs)
        assert len({r.server_index for r in reqs}) == 4

    run_app(cluster, app)


def test_mget_faster_than_sequential_gets():
    def run(batched):
        cluster = small_cluster(profiles.H_RDMA_OPT_BLOCK)
        client = cluster.clients[0]
        sim = cluster.sim
        keys = [f"k{i}".encode() for i in range(32)]

        def app(sim):
            for k in keys:
                yield from client.set(k, 8 * KB)
            t0 = sim.now
            if batched:
                yield from client.mget(keys)
            else:
                for k in keys:
                    yield from client.get(k)
            return sim.now - t0

        return sim.run(until=sim.spawn(app(sim)))

    assert run(batched=True) < run(batched=False)


def test_mget_works_on_ipoib():
    cluster = small_cluster(profiles.IPOIB_MEM)
    client = cluster.clients[0]

    def app(sim):
        yield from client.set(b"a", 1 * KB)
        reqs = yield from client.mget([b"a"])
        assert reqs[0].status == HIT

    run_app(cluster, app)


def test_mget_records_ops_once():
    cluster = small_cluster()
    client = cluster.clients[0]

    def app(sim):
        yield from client.set(b"x", 1 * KB)
        yield from client.mget([b"x"])

    run_app(cluster, app)
    assert [r.api for r in client.records] == ["set", "mget"]
