"""Unit tests for MemcachedReq and OpRecord."""

import pytest

from repro.client.request import MemcachedReq, OpRecord
from repro.sim import Simulator


def make_req(**kw):
    sim = Simulator()
    defaults = dict(req_id=1, op="get", key=b"k", value_length=0, api="iget")
    defaults.update(kw)
    return sim, MemcachedReq(sim, **defaults)


def test_initial_state():
    _, req = make_req()
    assert not req.done
    assert req.status is None
    assert req.blocked_time == 0.0
    assert req.cas_token == 0


def test_done_after_completion():
    sim, req = make_req()
    req.complete.succeed("resp")
    assert req.done


def test_latency_and_overlap():
    _, req = make_req()
    req.t_issue = 1.0
    req.t_complete = 3.0
    req.blocked_time = 0.5
    assert req.latency == pytest.approx(2.0)
    assert req.overlap_fraction == pytest.approx(0.75)


def test_overlap_clamped():
    _, req = make_req()
    req.t_issue = 1.0
    req.t_complete = 2.0
    req.blocked_time = 5.0  # over-accounted: clamp, don't go negative
    assert req.overlap_fraction == 0.0


def test_overlap_zero_lifetime():
    _, req = make_req()
    req.t_issue = req.t_complete = 1.0
    assert req.overlap_fraction == 0.0


def test_repr_mentions_api_and_key():
    _, req = make_req()
    assert "iget" in repr(req)
    assert "k" in repr(req)


def test_oprecord_from_req_copies_everything():
    _, req = make_req(op="set", api="bset", value_length=2048)
    req.status = "STORED"
    req.t_issue, req.t_complete = 0.0, 1.0
    req.blocked_time = 0.25
    req.stages["slab_alloc"] = 0.1
    req.server_index = 3
    rec = OpRecord.from_req(req)
    assert rec.op == "set" and rec.api == "bset"
    assert rec.value_length == 2048
    assert rec.server_index == 3
    assert rec.stages == {"slab_alloc": 0.1}
    assert rec.overlap_fraction == pytest.approx(0.75)
    # Mutating the req afterwards must not affect the record.
    req.stages["slab_alloc"] = 9.9
    assert rec.stages["slab_alloc"] == 0.1


# -- ReqResult: the uniform completion view ---------------------------------


def test_result_pending_before_completion():
    from repro.client import ReqResult  # public facade export

    _, req = make_req()
    res = req.result()
    assert isinstance(res, ReqResult)
    assert res.pending and not res.ok
    assert res.status == "PENDING"
    assert res.latency == 0.0


def test_result_after_completion():
    _, req = make_req(op="set", api="bset", value_length=2048)
    req.status = "STORED"
    req.t_issue, req.t_complete = 1.0, 3.0
    req.blocked_time = 0.5
    req.server_index = 2
    req.cas_token = 7
    req.complete.succeed(None)
    res = req.result()
    assert res.ok and not res.pending
    assert res.op == "set" and res.api == "bset"
    assert res.latency == pytest.approx(2.0)
    assert res.blocked_time == pytest.approx(0.5)
    assert res.server_index == 2 and res.cas_token == 7


def test_result_ok_folds_status_zoo():
    from repro.client.request import ReqResult

    def res(status):
        return ReqResult(op="x", api="x", status=status, value_length=0,
                         latency=0.0, blocked_time=0.0)

    assert all(res(s).ok for s in ("STORED", "HIT", "DELETED", "TOUCHED"))
    assert not any(res(s).ok for s in
                   ("MISS", "NOT_STORED", "EXISTS", "NOT_FOUND",
                    "SERVER_DOWN", "PENDING"))


def test_result_is_immutable_snapshot():
    _, req = make_req()
    req.status = "HIT"
    req.complete.succeed(None)
    res = req.result()
    with pytest.raises(Exception):
        res.status = "MISS"  # frozen dataclass
    req.status = "MISS"
    assert res.status == "HIT"


def test_result_uniform_across_apis():
    """The point of the facade: blocking get, nonb iget, and bget all
    read back through the same result() shape."""
    from repro import build_cluster, profiles
    from repro.units import MB as _MB

    cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I,
                            server_mem=8 * _MB, ssd_limit=16 * _MB)
    client = cluster.clients[0]
    sim = cluster.sim
    out = {}

    def app(sim):
        s = yield from client.set(b"k", 1024)
        g = yield from client.get(b"k")
        i = yield from client.iget(b"k")
        yield from client.wait(i)
        b = yield from client.bget(b"k")
        yield from client.wait(b)
        out["results"] = [s.result(), g.result(), i.result(), b.result()]

    sim.run(until=sim.spawn(app(sim)))
    s, g, i, b = out["results"]
    assert s.ok and s.status == "STORED"
    assert g.ok and i.ok and b.ok
    assert {g.status, i.status, b.status} == {"HIT"}
    assert g.value_length == i.value_length == b.value_length == 1024
    for r in (g, i, b):
        assert r.latency > 0 and r.server_index == 0
