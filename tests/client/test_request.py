"""Unit tests for MemcachedReq and OpRecord."""

import pytest

from repro.client.request import MemcachedReq, OpRecord
from repro.sim import Simulator


def make_req(**kw):
    sim = Simulator()
    defaults = dict(req_id=1, op="get", key=b"k", value_length=0, api="iget")
    defaults.update(kw)
    return sim, MemcachedReq(sim, **defaults)


def test_initial_state():
    _, req = make_req()
    assert not req.done
    assert req.status is None
    assert req.blocked_time == 0.0
    assert req.cas_token == 0


def test_done_after_completion():
    sim, req = make_req()
    req.complete.succeed("resp")
    assert req.done


def test_latency_and_overlap():
    _, req = make_req()
    req.t_issue = 1.0
    req.t_complete = 3.0
    req.blocked_time = 0.5
    assert req.latency == pytest.approx(2.0)
    assert req.overlap_fraction == pytest.approx(0.75)


def test_overlap_clamped():
    _, req = make_req()
    req.t_issue = 1.0
    req.t_complete = 2.0
    req.blocked_time = 5.0  # over-accounted: clamp, don't go negative
    assert req.overlap_fraction == 0.0


def test_overlap_zero_lifetime():
    _, req = make_req()
    req.t_issue = req.t_complete = 1.0
    assert req.overlap_fraction == 0.0


def test_repr_mentions_api_and_key():
    _, req = make_req()
    assert "iget" in repr(req)
    assert "k" in repr(req)


def test_oprecord_from_req_copies_everything():
    _, req = make_req(op="set", api="bset", value_length=2048)
    req.status = "STORED"
    req.t_issue, req.t_complete = 0.0, 1.0
    req.blocked_time = 0.25
    req.stages["slab_alloc"] = 0.1
    req.server_index = 3
    rec = OpRecord.from_req(req)
    assert rec.op == "set" and rec.api == "bset"
    assert rec.value_length == 2048
    assert rec.server_index == 3
    assert rec.stages == {"slab_alloc": 0.1}
    assert rec.overlap_fraction == pytest.approx(0.75)
    # Mutating the req afterwards must not affect the record.
    req.stages["slab_alloc"] = 9.9
    assert rec.stages["slab_alloc"] == 0.1
