"""Tests for key-to-server routing."""

import pytest

from repro.client.hashing import KetamaRouter, ModuloRouter, one_at_a_time


def test_one_at_a_time_is_deterministic_32bit():
    h1 = one_at_a_time(b"some-key")
    h2 = one_at_a_time(b"some-key")
    assert h1 == h2
    assert 0 <= h1 < 2 ** 32


def test_one_at_a_time_disperses():
    hashes = {one_at_a_time(f"key{i}".encode()) for i in range(1000)}
    assert len(hashes) > 990  # essentially no collisions


def test_modulo_router_covers_all_servers():
    router = ModuloRouter(4)
    seen = {router.server_for(f"key{i}".encode()) for i in range(1000)}
    assert seen == {0, 1, 2, 3}


def test_modulo_router_balance():
    router = ModuloRouter(4)
    counts = [0] * 4
    for i in range(4000):
        counts[router.server_for(f"key{i}".encode())] += 1
    assert min(counts) > 700  # roughly balanced


def test_router_validates_server_count():
    with pytest.raises(ValueError):
        ModuloRouter(0)
    with pytest.raises(ValueError):
        KetamaRouter(0)


def test_ketama_stability_on_server_add():
    """Consistent hashing moves only ~1/n of the keys."""
    r3 = KetamaRouter(3)
    r4 = KetamaRouter(4)
    keys = [f"key{i}".encode() for i in range(2000)]
    moved = sum(1 for k in keys if r3.server_for(k) != r4.server_for(k))
    assert moved < len(keys) * 0.5  # far fewer than modulo's ~75%


def test_modulo_instability_on_server_add():
    r3 = ModuloRouter(3)
    r4 = ModuloRouter(4)
    keys = [f"key{i}".encode() for i in range(2000)]
    moved = sum(1 for k in keys if r3.server_for(k) != r4.server_for(k))
    assert moved > len(keys) * 0.5


def test_ketama_deterministic():
    r = KetamaRouter(5)
    assert [r.server_for(b"abc")] * 3 == [r.server_for(b"abc") for _ in range(3)]


# -- replica sets (ring-successor replication) ------------------------------


@pytest.mark.parametrize("router_cls", [ModuloRouter, KetamaRouter])
def test_replicas_head_matches_server_for(router_cls):
    """``replicas_for(key, n)[0]`` is the primary, under any alive view."""
    router = router_cls(4)
    keys = [f"key{i}".encode() for i in range(200)]
    for alive in (None, {0, 1, 2, 3}, {0, 2, 3}, {2}):
        for k in keys:
            reps = router.replicas_for(k, 2, alive)
            assert reps[0] == router.server_for(k, alive)


@pytest.mark.parametrize("router_cls", [ModuloRouter, KetamaRouter])
def test_replicas_distinct_and_capped(router_cls):
    router = router_cls(4)
    for i in range(200):
        reps = router.replicas_for(f"key{i}".encode(), 3)
        assert len(reps) == 3
        assert len(set(reps)) == 3
    # More replicas than live servers: degrade, don't raise.
    assert len(router.replicas_for(b"k", 3, alive={0, 2})) == 2
    with pytest.raises(ValueError):
        router.replicas_for(b"k", 2, alive=set())
    with pytest.raises(ValueError):
        router.replicas_for(b"k", 0)


def test_failover_read_lands_on_surviving_replica():
    """When the primary dies, the rehashed read target is exactly the
    key's second replica — so R=2 failover reads hit warm data."""
    for router in (KetamaRouter(4), ModuloRouter(4)):
        for i in range(300):
            key = f"key{i}".encode()
            primary, secondary = router.replicas_for(key, 2)
            alive = {0, 1, 2, 3} - {primary}
            assert router.server_for(key, alive) == secondary


def test_ketama_replica_set_stable_across_heal():
    """Crash + heal returns every key to its original replica set, and
    during the outage the surviving replica keeps its role."""
    router = KetamaRouter(4)
    keys = [f"key{i}".encode() for i in range(300)]
    before = {k: tuple(router.replicas_for(k, 2)) for k in keys}
    alive = {0, 2, 3}  # server 1 down
    for k in keys:
        during = router.replicas_for(k, 2, alive)
        # Survivors keep their replica role; only the dead server's
        # slot is re-delegated to the next live ring successor.
        for s in before[k]:
            if s != 1:
                assert s in during
    after = {k: tuple(router.replicas_for(k, 2)) for k in keys}
    assert after == before
