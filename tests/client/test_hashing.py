"""Tests for key-to-server routing."""

import pytest

from repro.client.hashing import KetamaRouter, ModuloRouter, one_at_a_time


def test_one_at_a_time_is_deterministic_32bit():
    h1 = one_at_a_time(b"some-key")
    h2 = one_at_a_time(b"some-key")
    assert h1 == h2
    assert 0 <= h1 < 2 ** 32


def test_one_at_a_time_disperses():
    hashes = {one_at_a_time(f"key{i}".encode()) for i in range(1000)}
    assert len(hashes) > 990  # essentially no collisions


def test_modulo_router_covers_all_servers():
    router = ModuloRouter(4)
    seen = {router.server_for(f"key{i}".encode()) for i in range(1000)}
    assert seen == {0, 1, 2, 3}


def test_modulo_router_balance():
    router = ModuloRouter(4)
    counts = [0] * 4
    for i in range(4000):
        counts[router.server_for(f"key{i}".encode())] += 1
    assert min(counts) > 700  # roughly balanced


def test_router_validates_server_count():
    with pytest.raises(ValueError):
        ModuloRouter(0)
    with pytest.raises(ValueError):
        KetamaRouter(0)


def test_ketama_stability_on_server_add():
    """Consistent hashing moves only ~1/n of the keys."""
    r3 = KetamaRouter(3)
    r4 = KetamaRouter(4)
    keys = [f"key{i}".encode() for i in range(2000)]
    moved = sum(1 for k in keys if r3.server_for(k) != r4.server_for(k))
    assert moved < len(keys) * 0.5  # far fewer than modulo's ~75%


def test_modulo_instability_on_server_add():
    r3 = ModuloRouter(3)
    r4 = ModuloRouter(4)
    keys = [f"key{i}".encode() for i in range(2000)]
    moved = sum(1 for k in keys if r3.server_for(k) != r4.server_for(k))
    assert moved > len(keys) * 0.5


def test_ketama_deterministic():
    r = KetamaRouter(5)
    assert [r.server_for(b"abc")] * 3 == [r.server_for(b"abc") for _ in range(3)]
