"""Tests for the client API: blocking, non-blocking, wait/test semantics."""

import pytest

from repro import build_cluster, profiles
from repro.client.client import UnsupportedOperation
from repro.server.protocol import HIT, MISS, STORED
from repro.units import KB, MB, MS, US


def run_app(cluster, gen_fn):
    sim = cluster.sim
    p = sim.spawn(gen_fn(sim))
    return sim.run(until=p)


def small_cluster(profile, **kw):
    kw.setdefault("server_mem", 32 * MB)
    kw.setdefault("ssd_limit", 64 * MB)
    return build_cluster(profile, **kw)


class TestBlockingAPI:
    def test_set_get_roundtrip(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        client = cluster.clients[0]

        def app(sim):
            r = yield from client.set(b"key", 4 * KB)
            assert r.status == STORED
            g = yield from client.get(b"key")
            assert g.status == HIT
            assert g.value_length == 4 * KB

        run_app(cluster, app)

    def test_blocking_ops_have_zero_overlap(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        client = cluster.clients[0]

        def app(sim):
            yield from client.set(b"key", 4 * KB)
            yield from client.get(b"key")

        run_app(cluster, app)
        for rec in client.records:
            assert rec.overlap_fraction < 0.05

    def test_miss_pays_backend_penalty(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]

        def app(sim):
            g = yield from client.get(b"absent")
            assert g.status == MISS
            assert g.stages["miss_penalty"] == pytest.approx(2 * MS)
            # Repopulated: next get hits without penalty.
            g2 = yield from client.get(b"absent")
            assert g2.status == HIT

        run_app(cluster, app)

    def test_delete(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        client = cluster.clients[0]

        def app(sim):
            yield from client.set(b"key", 1 * KB)
            d = yield from client.delete(b"key")
            assert d.status == "DELETED"

        run_app(cluster, app)


class TestNonBlockingGating:
    @pytest.mark.parametrize("profile", [
        profiles.IPOIB_MEM, profiles.RDMA_MEM, profiles.H_RDMA_DEF])
    def test_existing_designs_reject_nonblocking(self, profile):
        cluster = small_cluster(profile)
        client = cluster.clients[0]

        def app(sim):
            with pytest.raises(UnsupportedOperation):
                yield from client.iset(b"k", 1 * KB)
            with pytest.raises(UnsupportedOperation):
                yield from client.iget(b"k")
            with pytest.raises(UnsupportedOperation):
                yield from client.bset(b"k", 1 * KB)
            with pytest.raises(UnsupportedOperation):
                yield from client.bget(b"k")
            yield sim.timeout(0)

        run_app(cluster, app)

    def test_blocking_apis_coexist_with_nonblocking(self):
        """Sec IV: the extensions co-exist with the blocking APIs."""
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]

        def app(sim):
            r1 = yield from client.set(b"a", 1 * KB)  # blocking
            r2 = yield from client.iset(b"b", 1 * KB)  # non-blocking
            yield from client.wait(r2)
            assert r1.status == STORED and r2.status == STORED

        run_app(cluster, app)


class TestIsetIget:
    def test_iset_returns_before_completion(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]
        seen = {}

        def app(sim):
            req = yield from client.iset(b"key", 32 * KB)
            seen["done_at_return"] = req.done
            yield from client.wait(req)
            seen["done_after_wait"] = req.done
            seen["status"] = req.status

        run_app(cluster, app)
        assert seen["done_at_return"] is False
        assert seen["done_after_wait"] is True
        assert seen["status"] == STORED

    def test_iget_fetches_value(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]

        def app(sim):
            yield from client.set(b"key", 8 * KB)
            req = yield from client.iget(b"key")
            yield from client.wait(req)
            assert req.status == HIT
            assert req.value_length == 8 * KB

        run_app(cluster, app)

    def test_iset_blocked_time_is_tiny(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]
        out = {}

        def app(sim):
            req = yield from client.iset(b"key", 256 * KB)
            out["blocked_at_return"] = req.blocked_time
            yield from client.wait(req)

        run_app(cluster, app)
        assert out["blocked_at_return"] < 1 * US

    def test_pipelined_isets_outperform_blocking_sets(self):
        def elapsed(profile, use_iset):
            cluster = small_cluster(profile)
            client = cluster.clients[0]
            sim = cluster.sim

            def app(sim):
                if use_iset:
                    reqs = []
                    for i in range(50):
                        reqs.append((yield from client.iset(
                            f"k{i}".encode(), 32 * KB)))
                    yield from client.wait_all(reqs)
                else:
                    for i in range(50):
                        yield from client.set(f"k{i}".encode(), 32 * KB)

            t0 = sim.now
            run_app(cluster, app)
            return sim.now - t0

        t_nonb = elapsed(profiles.H_RDMA_OPT_NONB_I, True)
        t_block = elapsed(profiles.H_RDMA_OPT_BLOCK, False)
        assert t_nonb < t_block


class TestBsetBget:
    def test_bset_buffer_safe_at_return(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_B)
        client = cluster.clients[0]
        out = {}

        def app(sim):
            req = yield from client.bset(b"key", 32 * KB)
            out["safe"] = req.buffer_safe.triggered
            out["done"] = req.done
            yield from client.wait(req)

        run_app(cluster, app)
        assert out["safe"] is True  # buffer reusable at API return
        assert out["done"] is False  # ...but op not yet complete

    def test_bget_returns_after_header_on_wire(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_B)
        client = cluster.clients[0]
        out = {}

        def app(sim):
            yield from client.set(b"key", 64 * KB)
            req = yield from client.bget(b"key")
            out["safe"] = req.buffer_safe.triggered
            out["done"] = req.done
            yield from client.wait(req)
            out["status"] = req.status

        run_app(cluster, app)
        assert out["safe"] is True
        assert out["done"] is False
        assert out["status"] == HIT

    def test_bset_blocks_longer_than_iset(self):
        def blocked_at_return(profile, api):
            cluster = small_cluster(profile)
            client = cluster.clients[0]
            out = {}

            def app(sim):
                fn = client.bset if api == "bset" else client.iset
                req = yield from fn(b"key", 512 * KB)
                out["blocked"] = req.blocked_time
                yield from client.wait(req)

            run_app(cluster, app)
            return out["blocked"]

        b = blocked_at_return(profiles.H_RDMA_OPT_NONB_B, "bset")
        i = blocked_at_return(profiles.H_RDMA_OPT_NONB_I, "iset")
        assert b > i  # bset waits for the value to leave the buffer


class TestWaitTest:
    def test_test_polls_without_blocking(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]
        polls = []

        def app(sim):
            req = yield from client.iset(b"key", 32 * KB)
            polls.append(client.test(req))
            while not client.test(req):
                yield sim.timeout(1 * US)
            polls.append(client.test(req))

        run_app(cluster, app)
        assert polls[0] is False
        assert polls[-1] is True

    def test_wait_all_bursty_pattern(self):
        """The Listing-2 usage: issue a block of chunks, wait at the end."""
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]

        def app(sim):
            reqs = []
            for i in range(16):
                reqs.append((yield from client.iset(
                    f"chunk{i}".encode(), 256 * KB)))
            done = yield from client.wait_all(reqs)
            assert all(r.status == STORED for r in done)

        run_app(cluster, app)

    def test_quiesce_drains_outstanding(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]

        def app(sim):
            for i in range(10):
                yield from client.iset(f"k{i}".encode(), 8 * KB)
            yield from client.quiesce()
            assert client.outstanding_count == 0

        run_app(cluster, app)


class TestRecords:
    def test_records_written_once_per_op(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iset(b"k", 1 * KB)
            yield from client.wait(req)
            yield from client.wait(req)  # double-wait must not double-record
            yield from client.get(b"k")

        run_app(cluster, app)
        assert len(client.records) == 2

    def test_reset_metrics(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        client = cluster.clients[0]

        def app(sim):
            yield from client.set(b"k", 1 * KB)

        run_app(cluster, app)
        assert client.records
        client.reset_metrics()
        assert not client.records
        assert client.total_blocked == 0.0

    def test_repopulate_set_not_recorded(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        cluster.backend.default_value_length = 1 * KB
        client = cluster.clients[0]

        def app(sim):
            yield from client.get(b"absent")  # miss -> backend -> re-set

        run_app(cluster, app)
        ops = [r.op for r in client.records]
        assert ops == ["get"]  # the internal repopulation set is hidden


class TestMultiServer:
    def test_keys_spread_over_servers(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I, num_servers=4)
        client = cluster.clients[0]

        def app(sim):
            reqs = []
            for i in range(64):
                reqs.append((yield from client.iset(
                    f"key{i}".encode(), 4 * KB)))
            yield from client.wait_all(reqs)

        run_app(cluster, app)
        sizes = [len(s.manager.table) for s in cluster.servers]
        assert sum(sizes) == 64
        assert all(n > 0 for n in sizes)

    def test_get_routes_to_owner(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I, num_servers=4)
        client = cluster.clients[0]

        def app(sim):
            yield from client.set(b"routed", 4 * KB)
            g = yield from client.get(b"routed")
            assert g.status == HIT

        run_app(cluster, app)
