"""Tests for add/replace/cas (memcached's conditional storage commands)."""

import pytest

from repro import build_cluster, profiles
from repro.units import KB, MB


@pytest.fixture()
def rig():
    cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I, server_mem=16 * MB,
                            ssd_limit=64 * MB)
    return cluster, cluster.clients[0]


def run_app(cluster, gen_fn):
    sim = cluster.sim
    return sim.run(until=sim.spawn(gen_fn(sim)))


class TestAdd:
    def test_add_stores_when_absent(self, rig):
        cluster, client = rig

        def app(sim):
            r = yield from client.add(b"fresh", 1 * KB)
            assert r.status == "STORED"
            g = yield from client.get(b"fresh")
            assert g.status == "HIT"

        run_app(cluster, app)

    def test_add_fails_when_present(self, rig):
        cluster, client = rig

        def app(sim):
            yield from client.set(b"key", 1 * KB)
            r = yield from client.add(b"key", 2 * KB)
            assert r.status == "NOT_STORED"
            g = yield from client.get(b"key")
            assert g.value_length == 1 * KB  # original untouched

        run_app(cluster, app)


class TestReplace:
    def test_replace_fails_when_absent(self, rig):
        cluster, client = rig

        def app(sim):
            r = yield from client.replace(b"nope", 1 * KB)
            assert r.status == "NOT_STORED"
            g = yield from client.get(b"nope")
            assert g.status == "MISS"

        run_app(cluster, app)

    def test_replace_overwrites_when_present(self, rig):
        cluster, client = rig

        def app(sim):
            yield from client.set(b"key", 1 * KB)
            r = yield from client.replace(b"key", 4 * KB)
            assert r.status == "STORED"
            g = yield from client.get(b"key")
            assert g.value_length == 4 * KB

        run_app(cluster, app)


class TestCas:
    def test_cas_succeeds_with_fresh_token(self, rig):
        cluster, client = rig

        def app(sim):
            yield from client.set(b"key", 1 * KB)
            g = yield from client.get(b"key")
            assert g.cas_token > 0
            r = yield from client.cas(b"key", 2 * KB, g.cas_token)
            assert r.status == "STORED"

        run_app(cluster, app)

    def test_cas_fails_after_interleaved_write(self, rig):
        cluster, client = rig

        def app(sim):
            yield from client.set(b"key", 1 * KB)
            g = yield from client.get(b"key")
            stale = g.cas_token
            yield from client.set(b"key", 1 * KB)  # someone else wrote
            r = yield from client.cas(b"key", 2 * KB, stale)
            assert r.status == "EXISTS"
            g2 = yield from client.get(b"key")
            assert g2.value_length == 1 * KB  # cas write rejected

        run_app(cluster, app)

    def test_cas_on_absent_key(self, rig):
        cluster, client = rig

        def app(sim):
            r = yield from client.cas(b"ghost", 1 * KB, 42)
            assert r.status == "NOT_FOUND"

        run_app(cluster, app)

    def test_cas_tokens_monotone_per_server(self, rig):
        cluster, client = rig

        def app(sim):
            tokens = []
            for _ in range(3):
                yield from client.set(b"key", 1 * KB)
                g = yield from client.get(b"key")
                tokens.append(g.cas_token)
            assert tokens == sorted(tokens)
            assert len(set(tokens)) == 3

        run_app(cluster, app)


class TestFailedStoresAllocateNothing:
    def test_failed_add_does_not_grow_server(self, rig):
        cluster, client = rig
        srv = cluster.servers[0].manager

        def app(sim):
            yield from client.set(b"key", 1 * KB)
            before = srv.allocator.stored_bytes()
            yield from client.add(b"key", 8 * KB)
            assert srv.allocator.stored_bytes() == before

        run_app(cluster, app)


def test_conditionals_work_over_ipoib():
    cluster = build_cluster(profiles.IPOIB_MEM, server_mem=16 * MB)
    client = cluster.clients[0]

    def app(sim):
        r1 = yield from client.add(b"k", 1 * KB)
        r2 = yield from client.add(b"k", 1 * KB)
        assert (r1.status, r2.status) == ("STORED", "NOT_STORED")

    run_app(cluster, app)
