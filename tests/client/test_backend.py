"""Unit tests for the backend database model."""

import pytest

from repro.client.backend import BackendDatabase
from repro.sim import Simulator
from repro.units import MS


def test_fetch_costs_the_penalty():
    sim = Simulator()
    backend = BackendDatabase(sim, penalty=2 * MS)

    def app(sim):
        yield from backend.fetch(b"k")
        return sim.now

    assert sim.run(until=sim.spawn(app(sim))) == pytest.approx(2 * MS)
    assert backend.fetches == 1


def test_default_value_length():
    sim = Simulator()
    backend = BackendDatabase(sim, default_value_length=512)

    def app(sim):
        return (yield from backend.fetch(b"k"))

    assert sim.run(until=sim.spawn(app(sim))) == 512


def test_value_length_callable_wins():
    sim = Simulator()
    backend = BackendDatabase(sim, value_length_for=lambda k: len(k) * 100,
                              default_value_length=1)

    def app(sim):
        return (yield from backend.fetch(b"abcd"))

    assert sim.run(until=sim.spawn(app(sim))) == 400


def test_concurrent_fetches_overlap():
    """The backend is a parallel database, not a serial queue."""
    sim = Simulator()
    backend = BackendDatabase(sim, penalty=1 * MS)
    done = []

    def app(sim):
        yield from backend.fetch(b"x")
        done.append(sim.now)

    for _ in range(5):
        sim.spawn(app(sim))
    sim.run()
    assert all(t == pytest.approx(1 * MS) for t in done)
    assert backend.fetches == 5
