"""Tests for the stats wire command."""

from repro import build_cluster, profiles
from repro.units import KB, MB


def run_app(cluster, gen_fn):
    sim = cluster.sim
    return sim.run(until=sim.spawn(gen_fn(sim)))


def test_stats_reflect_operations():
    cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I, server_mem=16 * MB,
                            ssd_limit=64 * MB)
    client = cluster.clients[0]
    out = {}

    def app(sim):
        for i in range(10):
            yield from client.set(f"k{i}".encode(), 4 * KB)
        yield from client.get(b"k0")
        yield from client.get(b"absent")
        out["stats"] = yield from client.stats()

    run_app(cluster, app)
    s = out["stats"]
    # The repopulation set after the miss also counts server-side.
    assert s["cmd_set"] >= 10
    assert s["cmd_get"] == 2
    assert s["get_hits"] == 1
    assert s["get_misses"] == 1
    assert s["curr_items"] >= 10
    assert "device_reads" in s  # hybrid server exposes device counters


def test_stats_on_inmemory_server_has_no_device_counters():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"x", 1 * KB)
        out["stats"] = yield from client.stats()

    run_app(cluster, app)
    assert "device_reads" not in out["stats"]
    assert out["stats"]["items_ssd"] == 0


def test_stats_takes_simulated_time_and_is_not_recorded():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    client = cluster.clients[0]

    def app(sim):
        t0 = sim.now
        yield from client.stats()
        assert sim.now > t0  # a real round trip happened

    run_app(cluster, app)
    assert client.records == []  # stats is not a data operation


def test_stats_per_server():
    cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I, num_servers=2,
                            server_mem=16 * MB, ssd_limit=64 * MB)
    client = cluster.clients[0]
    out = {}

    def app(sim):
        # Write enough keys that both servers hold some.
        for i in range(16):
            yield from client.set(f"key{i}".encode(), 2 * KB)
        out[0] = yield from client.stats(0)
        out[1] = yield from client.stats(1)

    run_app(cluster, app)
    assert out[0]["curr_items"] + out[1]["curr_items"] == 16
    assert out[0]["curr_items"] > 0 and out[1]["curr_items"] > 0
