"""End-to-end incr/decr/gets through the full client/server path."""

import pytest

from repro import build_cluster, profiles
from repro.core.cluster import ReplicationConfig
from repro.units import KB, MB

pytestmark = pytest.mark.protocol


def run_app(cluster, gen_fn):
    sim = cluster.sim
    return sim.run(until=sim.spawn(gen_fn(sim)))


def test_incr_autocreate_and_arithmetic():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    client = cluster.clients[0]
    out = {}

    def app(sim):
        r = yield from client.incr(b"c", 5, initial=0)
        out["create"] = (r.status, r.counter_value)
        r = yield from client.incr(b"c", 5)
        out["incr"] = (r.status, r.counter_value)
        r = yield from client.decr(b"c", 2)
        out["decr"] = (r.status, r.counter_value)
        r = yield from client.decr(b"c", 100)
        out["sat"] = (r.status, r.counter_value)

    run_app(cluster, app)
    assert out["create"] == ("STORED", 0)  # auto-create stores the initial
    assert out["incr"] == ("STORED", 5)
    assert out["decr"] == ("STORED", 3)
    assert out["sat"] == ("STORED", 0)  # decr saturates at zero


def test_incr_missing_without_initial():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    client = cluster.clients[0]

    def app(sim):
        r = yield from client.incr(b"ghost", 1)
        assert r.status == "NOT_FOUND"
        r = yield from client.decr(b"ghost", 1)
        assert r.status == "NOT_FOUND"

    run_app(cluster, app)


def test_incr_on_opaque_value_not_numeric():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    client = cluster.clients[0]

    def app(sim):
        yield from client.set(b"blob", 4 * KB)
        r = yield from client.incr(b"blob", 1)
        assert r.status == "NOT_NUMERIC"

    run_app(cluster, app)


def test_gets_returns_cas_token_for_cas():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"k", 1 * KB)
        r = yield from client.gets(b"k")
        out["gets"] = (r.status, r.cas_token)
        c = yield from client.cas(b"k", 1 * KB, r.cas_token)
        out["cas"] = c.status

    run_app(cluster, app)
    assert out["gets"][0] == "HIT"
    assert out["gets"][1] > 0
    assert out["cas"] == "STORED"


def test_counter_replicates_to_all_replicas():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB,
                            num_servers=2,
                            replication=ReplicationConfig(factor=2))
    client = cluster.clients[0]

    def app(sim):
        yield from client.incr(b"c", 1, initial=10)
        yield from client.incr(b"c", 7)

    run_app(cluster, app)
    values = []
    for server in cluster.servers:
        item = server.manager.lookup(b"c")
        assert item is not None
        values.append(item.numeric)
    assert values == [17, 17]  # same arithmetic applied on every replica


def test_server_stats_count_counter_ops():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    client = cluster.clients[0]

    def app(sim):
        yield from client.incr(b"c", 1, initial=0)
        yield from client.decr(b"c", 1)

    run_app(cluster, app)
    snap = cluster.servers[0].stats_snapshot()
    assert snap["cmd_counter"] == 2
