"""Tests for the touch command (TTL refresh)."""

from repro import build_cluster, profiles
from repro.units import KB, MB


def run_app(cluster, gen_fn):
    sim = cluster.sim
    return sim.run(until=sim.spawn(gen_fn(sim)))


def test_touch_extends_ttl():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    cluster.backend.default_value_length = 0
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"ttl", 1 * KB, expiration=sim.now + 0.5)
        r = yield from client.touch(b"ttl", sim.now + 10.0)
        out["touch"] = r.status
        yield sim.timeout(1.0)  # past the original TTL
        g = yield from client.get(b"ttl")
        out["get"] = g.status

    run_app(cluster, app)
    assert out["touch"] == "TOUCHED"
    assert out["get"] == "HIT"  # the refreshed TTL kept it alive


def test_touch_missing_key():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    client = cluster.clients[0]

    def app(sim):
        r = yield from client.touch(b"ghost", sim.now + 5)
        assert r.status == "NOT_FOUND"

    run_app(cluster, app)


def test_touch_can_shorten_ttl():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB)
    cluster.backend.default_value_length = 0
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"k", 1 * KB)  # no expiry
        yield from client.touch(b"k", sim.now + 0.1)
        yield sim.timeout(0.5)
        g = yield from client.get(b"k")
        out["status"] = g.status

    run_app(cluster, app)
    assert out["status"] == "MISS"


def test_touch_bumps_lru():
    """A touched item should survive eviction pressure it would
    otherwise lose to (touch promotes it to MRU)."""
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=2 * MB)
    client = cluster.clients[0]

    def app(sim):
        for i in range(60):
            yield from client.set(f"k{i}".encode(), 30 * KB)
        yield from client.touch(b"k0", 0.0)
        for i in range(60, 75):
            yield from client.set(f"k{i}".encode(), 30 * KB)

    run_app(cluster, app)
    assert cluster.servers[0].manager.lookup(b"k0") is not None
