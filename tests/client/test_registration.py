"""Tests for the RDMA memory-registration model (Section IV motivation)."""

from repro import build_cluster, profiles
from repro.client.buffers import (
    PAGE,
    BufferPool,
    registration_cost,
    size_class,
)
from repro.client.client import ClientConfig
from repro.core.cluster import ClusterSpec
from repro.units import KB, MB


class TestBufferPoolUnit:
    def test_size_class_pow2_min_page(self):
        assert size_class(1) == PAGE
        assert size_class(PAGE) == PAGE
        assert size_class(PAGE + 1) == 2 * PAGE
        assert size_class(33 * KB) == 64 * KB

    def test_registration_cost_grows_with_size(self):
        assert registration_cost(1 * MB) > registration_cost(4 * KB)

    def test_acquire_release_reuse(self):
        pool = BufferPool()
        c1 = pool.acquire(8 * KB)
        assert c1 > 0
        pool.release(8 * KB)
        c2 = pool.acquire(8 * KB)
        assert c2 == 0.0  # registered buffer reused
        assert pool.stats.registrations == 1
        assert pool.stats.reuses == 1

    def test_different_classes_do_not_share(self):
        pool = BufferPool()
        pool.acquire(4 * KB)
        pool.release(4 * KB)
        assert pool.acquire(1 * MB) > 0

    def test_peak_tracking(self):
        pool = BufferPool()
        pool.acquire(4 * KB)
        pool.acquire(4 * KB)
        pool.release(4 * KB)
        pool.acquire(4 * KB)
        assert pool.stats.peak_bytes == 2 * PAGE
        assert pool.in_use_bytes == 2 * PAGE


def run_workload(profile, api, n=64, value=32 * KB):
    spec = ClusterSpec(server_mem=32 * MB, ssd_limit=64 * MB)
    cluster = build_cluster(profile, spec=spec)
    # Rebuild the client config with registration modeling on.
    client = cluster.clients[0]
    client.config = ClientConfig(
        nonblocking_allowed=profile.nonblocking, model_registration=True)
    sim = cluster.sim

    def app(sim):
        reqs = []
        for i in range(n):
            if api == "iset":
                reqs.append((yield from client.iset(
                    f"k{i}".encode(), value)))
            elif api == "bset":
                reqs.append((yield from client.bset(
                    f"k{i}".encode(), value)))
            else:
                yield from client.set(f"k{i}".encode(), value)
        yield from client.wait_all(reqs)

    sim.run(until=sim.spawn(app(sim)))
    return client.buffer_pool


def test_registration_disabled_by_default():
    cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I, server_mem=16 * MB,
                            ssd_limit=32 * MB)
    client = cluster.clients[0]

    def app(sim):
        yield from client.set(b"k", 8 * KB)

    cluster.sim.run(until=cluster.sim.spawn(app(cluster.sim)))
    assert client.buffer_pool.stats.registrations == 0


def test_blocking_client_needs_one_buffer():
    pool = run_workload(profiles.H_RDMA_OPT_BLOCK, "set")
    assert pool.stats.registrations == 1
    assert pool.stats.reuses == 63


def test_bset_reuses_buffers_early():
    """The b-variants' whole point: few registered buffers suffice."""
    pool_b = run_workload(profiles.H_RDMA_OPT_NONB_B, "bset")
    pool_i = run_workload(profiles.H_RDMA_OPT_NONB_I, "iset")
    # iset pins buffers until wait/test: a deep pipeline registers many.
    assert pool_i.stats.registrations > pool_b.stats.registrations
    assert pool_i.stats.peak_bytes > pool_b.stats.peak_bytes


def test_warm_pool_stops_registering():
    pool = run_workload(profiles.H_RDMA_OPT_NONB_I, "iset", n=200)
    # Far fewer registrations than ops: steady state reuses.
    assert pool.stats.registrations < 80
    assert pool.stats.reuses > 120
