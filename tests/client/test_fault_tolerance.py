"""Client-side fault-tolerance semantics and the bugs ISSUE 2 fixes:
ketama end-to-end routing (preload must follow the clients' router) and
the test()/wait miss-path + blocked-time accounting."""

import pytest

from repro import build_cluster, profiles
from repro.core.cluster import ReplicationConfig
from repro.client.hashing import make_router
from repro.server.protocol import HIT, MISS
from repro.units import KB, MB, MS, US


def run_app(cluster, gen_fn):
    sim = cluster.sim
    p = sim.spawn(gen_fn(sim))
    return sim.run(until=p)


def small_cluster(profile, **kw):
    kw.setdefault("server_mem", 32 * MB)
    kw.setdefault("ssd_limit", 64 * MB)
    return build_cluster(profile, **kw)


KEYS = [b"key-%d" % i for i in range(48)]


class TestKetamaEndToEnd:
    def test_preload_follows_ketama_router(self):
        """Regression: preload used to hardcode ModuloRouter, landing
        every key on the wrong server under router='ketama'."""
        cluster = small_cluster(
            profiles.RDMA_MEM, num_servers=4,
            replication=ReplicationConfig(router="ketama"))
        cluster.preload([(k, 4 * KB) for k in KEYS])
        client = cluster.clients[0]

        def app(sim):
            for key in KEYS:
                g = yield from client.get(key)
                assert g.status == HIT, key

        run_app(cluster, app)

    def test_surviving_servers_keys_still_hit_after_ejection(self):
        cluster = small_cluster(
            profiles.RDMA_MEM, num_servers=4,
            replication=ReplicationConfig(router="ketama"),
            request_timeout=1 * MS, failure_threshold=1)
        cluster.backend.default_value_length = 4 * KB
        cluster.preload([(k, 4 * KB) for k in KEYS])
        client = cluster.clients[0]
        router = make_router("ketama", 4)
        dead = 1
        dead_keys = [k for k in KEYS if router.server_for(k) == dead]
        surviving = [k for k in KEYS if router.server_for(k) != dead]
        assert dead_keys and surviving
        cluster.servers[dead].crash()

        def app(sim):
            # One get against the dead server: times out and ejects it.
            yield from client.get(dead_keys[0])
            assert not client._conns[dead].healthy
            # Every key owned by a surviving server is untouched.
            for key in surviving:
                g = yield from client.get(key)
                assert g.status == HIT, key

        run_app(cluster, app)

    def test_failover_rehashes_only_dead_servers_keys(self):
        """Ketama dead-server rehash: keys of the ejected server spread
        to survivors; survivors' own keys keep their placement."""
        alive = {0, 2, 3}
        router = make_router("ketama", 4)
        for key in KEYS:
            owner = router.server_for(key)
            rerouted = router.server_for(key, alive)
            if owner in alive:
                assert rerouted == owner
            else:
                assert rerouted in alive


class TestWaitTimeoutAccounting:
    def test_blocked_time_not_double_counted(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iset(b"key", 256 * KB)
            b0 = req.blocked_time
            t0 = sim.now
            r = yield from client.wait(req, timeout=5 * US)
            assert r is req and not req.done  # timed out, still pending
            yield from client.wait(req)
            assert req.done
            # Total blocked across both waits == the single span from
            # first wait to completion; a double-count would exceed it.
            assert req.blocked_time == pytest.approx(b0 + (sim.now - t0))

        run_app(cluster, app)

    def test_completed_before_timeout_accounts_once(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iset(b"key", 4 * KB)
            b0 = req.blocked_time
            t0 = sim.now
            yield from client.wait(req, timeout=50 * MS)
            assert req.done
            assert req.blocked_time == pytest.approx(b0 + (sim.now - t0))

        run_app(cluster, app)


class TestTestMissPath:
    def test_polling_loop_drives_miss_penalty_and_repopulation(self):
        """Regression: test() used to skip _handle_miss and never
        finalize MISS ops — misses vanished from records and the cache
        was never repopulated."""
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iget(b"absent")
            polls = 0
            while not client.test(req):
                polls += 1
                yield sim.timeout(10 * US)
            assert polls > 0
            assert req.status == MISS
            assert req.stages["miss_penalty"] > 0
            # The op reached the records (it used to be dropped).
            assert any(r.status == MISS for r in client.records)
            # And the cache was repopulated.
            g = yield from client.get(b"absent")
            assert g.status == HIT

        run_app(cluster, app)

    def test_poll_stays_zero_time_and_wait_joins_background_fetch(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iget(b"absent")
            yield req.complete
            t0 = sim.now
            done = client.test(req)  # starts the background fetch
            assert sim.now == t0  # the poll itself is zero-time
            assert not done  # not consumable until the fetch lands
            r = yield from client.wait(req)  # joins the same fetch
            assert r.done and r.status == MISS
            assert r.stages["miss_penalty"] > 0
            yield from client.quiesce()
            assert client.test(req)

        run_app(cluster, app)

    def test_hit_path_unchanged(self):
        cluster = small_cluster(profiles.H_RDMA_OPT_NONB_I)
        client = cluster.clients[0]

        def app(sim):
            yield from client.set(b"key", 4 * KB)
            req = yield from client.iget(b"key")
            while not client.test(req):
                yield sim.timeout(10 * US)
            assert req.status == HIT

        run_app(cluster, app)
