"""End-to-end gat, flush_all, and TTL interaction tests."""

import pytest

from repro import build_cluster, profiles
from repro.units import KB, MB

pytestmark = pytest.mark.protocol


def run_app(cluster, gen_fn):
    sim = cluster.sim
    return sim.run(until=sim.spawn(gen_fn(sim)))


def make(**kw):
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=16 * MB, **kw)
    cluster.backend.default_value_length = 0
    return cluster


def test_gat_extends_ttl():
    cluster = make()
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"k", 1 * KB, expiration=sim.now + 0.5)
        r = yield from client.gat(b"k", sim.now + 10.0)
        out["gat"] = r.status
        yield sim.timeout(1.0)  # past the original deadline
        g = yield from client.get(b"k")
        out["get"] = g.status

    run_app(cluster, app)
    assert out["gat"] == "HIT"
    assert out["get"] == "HIT"  # the gat-refreshed TTL kept it alive


def test_gat_miss_does_not_repopulate():
    cluster = make()
    client = cluster.clients[0]

    def app(sim):
        r = yield from client.gat(b"ghost", sim.now + 5.0)
        assert r.status == "MISS"

    run_app(cluster, app)
    # A gat miss is cache maintenance, not a demand read: no backend fill.
    assert cluster.servers[0].manager.lookup(b"ghost") is None


def test_gat_can_shorten_ttl():
    cluster = make()
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"k", 1 * KB)  # no expiry
        r = yield from client.gat(b"k", sim.now + 0.1)
        out["gat"] = r.status
        yield sim.timeout(0.5)
        g = yield from client.get(b"k")
        out["get"] = g.status

    run_app(cluster, app)
    assert out["gat"] == "HIT"
    assert out["get"] == "MISS"


def test_touch_then_expire_then_get():
    cluster = make()
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"k", 1 * KB)
        yield from client.touch(b"k", sim.now + 0.05)
        yield sim.timeout(0.1)
        g = yield from client.get(b"k")
        out["get"] = g.status

    run_app(cluster, app)
    assert out["get"] == "MISS"


def test_touch_to_past_deadline_reclaims_now():
    cluster = make()
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"k", 1 * KB)
        yield sim.timeout(0.01)
        r = yield from client.touch(b"k", sim.now)  # already-past deadline
        out["touch"] = r.status

    run_app(cluster, app)
    assert out["touch"] == "TOUCHED"
    # Regression: the dead item must be reclaimed, not parked in the table.
    assert b"k" not in cluster.servers[0].manager.table


def test_flush_all_now():
    cluster = make()
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"a", 1 * KB)
        yield from client.set(b"b", 1 * KB)
        reqs = yield from client.flush_all()
        out["flush"] = [r.status for r in reqs]
        ga = yield from client.get(b"a")
        gb = yield from client.get(b"b")
        out["gets"] = (ga.status, gb.status)

    run_app(cluster, app)
    assert out["flush"] == ["OK"]
    assert out["gets"] == ("MISS", "MISS")


def test_flush_all_delayed():
    cluster = make()
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"k", 1 * KB)
        yield from client.flush_all(delay=0.05)
        g1 = yield from client.get(b"k")
        out["before"] = g1.status
        yield sim.timeout(0.1)
        g2 = yield from client.get(b"k")
        out["after"] = g2.status

    run_app(cluster, app)
    assert out["before"] == "HIT"   # the epoch hasn't arrived yet
    assert out["after"] == "MISS"   # ... and now it has


def test_flush_all_fans_out_to_every_server():
    cluster = make(num_servers=3)
    client = cluster.clients[0]
    out = {}

    def app(sim):
        for i in range(12):
            yield from client.set(f"k{i}".encode(), 1 * KB)
        reqs = yield from client.flush_all()
        out["statuses"] = [r.status for r in reqs]
        misses = 0
        for i in range(12):
            g = yield from client.get(f"k{i}".encode())
            misses += g.status == "MISS"
        out["misses"] = misses

    run_app(cluster, app)
    assert out["statuses"] == ["OK", "OK", "OK"]
    assert out["misses"] == 12


def test_set_after_flush_survives():
    cluster = make()
    client = cluster.clients[0]
    out = {}

    def app(sim):
        yield from client.set(b"k", 1 * KB)
        yield from client.flush_all()
        yield from client.set(b"k", 1 * KB)  # re-created after the epoch
        g = yield from client.get(b"k")
        out["get"] = g.status

    run_app(cluster, app)
    assert out["get"] == "HIT"


def test_sweeper_reclaims_expired_chunks_without_access():
    cluster = make()
    client = cluster.clients[0]

    def app(sim):
        for i in range(8):
            yield from client.set(f"k{i}".encode(), 1 * KB,
                                  expiration=sim.now + 0.02)
        yield sim.timeout(1.0)

    run_app(cluster, app)
    mgr = cluster.servers[0].manager
    assert len(mgr.table) == 0  # reclaimed by the sweeper, never touched
    assert mgr.stats.expired_active == 8
