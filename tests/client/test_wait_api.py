"""wait_any / wait_all-timeout / wait-timeout + test interplay."""

import pytest

from repro import build_cluster, profiles
from repro.server.protocol import HIT, MISS, STORED
from repro.units import KB, MB, MS, US


def small_cluster(**kw):
    kw.setdefault("server_mem", 32 * MB)
    kw.setdefault("ssd_limit", 64 * MB)
    return build_cluster(profiles.H_RDMA_OPT_NONB_I, **kw)


def run_app(cluster, gen_fn):
    sim = cluster.sim
    return sim.run(until=sim.spawn(gen_fn(sim)))


class TestWaitAny:
    def test_returns_first_completion_and_remaining(self):
        cluster = small_cluster()
        client = cluster.clients[0]

        def app(sim):
            big = yield from client.iset(b"big", 256 * KB)
            small = yield from client.iset(b"small", 1 * KB)
            done, remaining = yield from client.wait_any([big, small])
            # The small transfer finishes first even though it was
            # issued second.
            assert done is small
            assert remaining == [big]
            assert done.status == STORED
            done2, remaining2 = yield from client.wait_any(remaining)
            assert done2 is big and remaining2 == []

        run_app(cluster, app)

    def test_already_done_wins_in_input_order(self):
        cluster = small_cluster()
        client = cluster.clients[0]

        def app(sim):
            r1 = yield from client.iset(b"a", 1 * KB)
            r2 = yield from client.iset(b"b", 1 * KB)
            yield from client.wait_all([r1, r2])
            t0 = sim.now
            done, remaining = yield from client.wait_any([r2, r1])
            assert done is r2 and remaining == [r1]
            assert sim.now == t0  # zero simulated time

        run_app(cluster, app)

    def test_empty_sequence(self):
        cluster = small_cluster()
        client = cluster.clients[0]

        def app(sim):
            done, remaining = yield from client.wait_any([])
            assert done is None and remaining == []

        run_app(cluster, app)

    def test_timeout_leaves_ops_in_flight(self):
        cluster = small_cluster()
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iset(b"big", 256 * KB)
            t0 = sim.now
            done, remaining = yield from client.wait_any(
                [req], timeout=1 * US)
            assert done is None and remaining == [req]
            assert sim.now - t0 == pytest.approx(1 * US)
            done, remaining = yield from client.wait_any(remaining)
            assert done is req and done.status == STORED

        run_app(cluster, app)
        assert len(client.records) == 1  # finalized exactly once

    def test_finalizes_like_wait(self):
        cluster = small_cluster()
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iget(b"nokey")
            done, _ = yield from client.wait_any([req])
            assert done.status == MISS
            assert done.stages.get("miss_penalty")  # miss path applied

        run_app(cluster, app)
        assert len(client.records) == 1


class TestWaitAllTimeout:
    def test_budget_is_shared_across_the_batch(self):
        cluster = small_cluster()
        client = cluster.clients[0]

        def app(sim):
            reqs = []
            for i in range(4):
                req = yield from client.iset(b"k%d" % i, 128 * KB)
                reqs.append(req)
            t0 = sim.now
            yield from client.wait_all(reqs, timeout=2 * US)
            # One shared budget, not per request.
            assert sim.now - t0 <= 4 * US
            pending = [r for r in reqs if r.req_id not in
                       client._recorded_ids]
            assert pending  # something was left in flight
            yield from client.wait_all(reqs)
            assert all(r.status == STORED for r in reqs)

        run_app(cluster, app)
        assert len(client.records) == 4

    def test_none_timeout_waits_everything(self):
        cluster = small_cluster()
        client = cluster.clients[0]

        def app(sim):
            reqs = []
            for i in range(3):
                req = yield from client.iset(b"k%d" % i, 4 * KB)
                reqs.append(req)
            done = yield from client.wait_all(reqs)
            assert done == reqs
            assert all(r.status == STORED for r in reqs)

        run_app(cluster, app)


class TestWaitTimeoutTestInterplay:
    def test_timed_out_wait_then_test_single_miss_penalty(self):
        cluster = small_cluster()
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iget(b"absent")
            got = yield from client.wait(req, timeout=1 * US)
            assert got is req
            assert req.req_id not in client._recorded_ids  # not finalized
            # Poll until the background backend fetch completes.
            while not client.test(req):
                yield sim.timeout(100 * US)
            assert req.status == MISS
            assert req.stages["miss_penalty"] == pytest.approx(2 * MS)
            # A later wait on the finalized request is a no-op.
            yield from client.wait(req)
            assert req.stages["miss_penalty"] == pytest.approx(2 * MS)

        run_app(cluster, app)
        assert len(client.records) == 1
        assert sum(1 for r in client.records if r.status == MISS) == 1

    def test_wait_after_completion_still_counts_once(self):
        cluster = small_cluster()
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iget(b"absent2")
            # Let the MISS response land, then drive the penalty via a
            # full wait; test() afterwards must not restart anything.
            yield from client.wait(req)
            assert req.stages["miss_penalty"] == pytest.approx(2 * MS)
            assert client.test(req) is True

        run_app(cluster, app)
        assert len(client.records) == 1
        assert sum(1 for r in client.records if r.status == MISS) == 1
