"""Acceptance: scale 4 -> 8 under live YCSB-A traffic.

The elasticity contract, end to end through the harness: the fleet
doubles mid-run through online migrations, the hit rate never craters
below 80% of its steady state in any time bucket, the recorded history
stays consistency-clean, and the whole paced/scaled run replays
byte-identically on the legacy-heap simulator. Unshardable by design —
the guard must refuse loudly.
"""

import pytest

from repro.core.cluster import ClusterSpec, ReplicationConfig
from repro.core.profiles import H_RDMA_OPT_NONB_I, IPOIB_MEM
from repro.core.topology import TopologyConfig
from repro.harness.runner import RunConfig, ScaleEvent
from repro.harness.sharded import ShardingUnsupported
from repro.sim import Simulator
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec
from repro.workloads.traffic import make_traffic


def fingerprint(result):
    return [(r.op, r.key_length, r.status, r.t_issue, r.t_complete,
             r.blocked_time, tuple(sorted(r.stages.items())))
            for r in result.records]


def scale_config(*, fast_lane=True, traffic=None, handoff="forward",
                 to_servers=8, check=True):
    spec = ClusterSpec(
        topology=TopologyConfig(initial_servers=4, handoff=handoff),
        num_clients=2, server_mem=8 * MB, ssd_limit=64 * MB,
        replication=ReplicationConfig(factor=1, router="ketama"))
    workload = WorkloadSpec(num_ops=400, num_keys=256,
                            value_length=4 * KB, seed=11)
    return RunConfig(profile=H_RDMA_OPT_NONB_I, workload=workload,
                     cluster=spec, ycsb="A", check_consistency=check,
                     scale_events=(ScaleEvent(at=2e-3, servers=to_servers),),
                     traffic=traffic, sim=Simulator(fast_lane=fast_lane))


def bucket_hit_rates(records, buckets=6):
    gets = [r for r in records if r.op == "get"]
    assert gets
    t0 = min(r.t_complete for r in gets)
    t1 = max(r.t_complete for r in gets)
    width = (t1 - t0) / buckets or 1.0
    rates = []
    for b in range(buckets):
        lo, hi = t0 + b * width, t0 + (b + 1) * width
        chunk = [r for r in gets if lo <= r.t_complete < hi] \
            if b < buckets - 1 else [r for r in gets if r.t_complete >= lo]
        if chunk:
            hits = sum(1 for r in chunk if r.status != "MISS")
            rates.append(hits / len(chunk))
    return rates


class TestScaleUnderYCSB:
    @pytest.mark.parametrize("handoff", ["forward", "double-read"])
    def test_four_to_eight_stays_green(self, handoff):
        cfg = scale_config(handoff=handoff)
        cluster = cfg.build()
        result = cfg.run(cluster=cluster)
        # The fleet actually doubled and the view flipped.
        assert len(cluster.serving_indices()) == 8
        assert cluster.view_epoch >= 1
        assert cluster.migration is None  # the run settled
        # Zero consistency violations across the migration window.
        assert result.consistency is not None
        assert result.consistency.ok, result.consistency.violations
        # Hit rate never craters: every time bucket holds at least 80%
        # of the steady-state (first-bucket, pre-scale) rate.
        rates = bucket_hit_rates(result.records)
        steady = rates[0]
        assert steady > 0.5
        assert all(rate >= 0.8 * steady for rate in rates), rates

    def test_scale_down_eight_to_four(self):
        cfg = scale_config(to_servers=2)
        cluster = cfg.build()
        result = cfg.run(cluster=cluster)
        assert len(cluster.serving_indices()) == 2
        assert result.consistency.ok, result.consistency.violations

    def test_fast_lane_and_legacy_sim_replay_byte_identically(self):
        fast = scale_config(fast_lane=True, check=False).run()
        legacy = scale_config(fast_lane=False, check=False).run()
        assert fingerprint(fast) == fingerprint(legacy)


class TestTrafficShapedRuns:
    @pytest.mark.parametrize("shape", ["diurnal", "spike"])
    def test_paced_scale_run_is_deterministic(self, shape):
        def once():
            return scale_config(traffic=make_traffic(shape),
                                check=False).run()

        first, second = once(), once()
        assert fingerprint(first) == fingerprint(second)
        assert len(first.records) == 800  # 400 ops x 2 clients

    def test_pacing_stretches_the_run(self):
        # Diurnal pacing adds inter-op sleeps the classic loop lacks.
        paced = scale_config(traffic=make_traffic(
            "diurnal", base_interval=30e-6), check=False).run()
        unpaced = scale_config(check=False).run()
        assert paced.span > unpaced.span


class TestShardingGuard:
    def test_elastic_runs_refuse_to_shard(self):
        spec = ClusterSpec(
            topology=TopologyConfig(initial_servers=3), num_clients=2,
            server_mem=4 * MB, ssd_limit=16 * MB)
        cfg = RunConfig(
            profile=IPOIB_MEM,
            workload=WorkloadSpec(num_ops=40, num_keys=32,
                                  value_length=256, seed=5),
            cluster=spec, shard_domains=2,
            scale_events=(ScaleEvent(at=1e-3, servers=4),))
        with pytest.raises(ShardingUnsupported, match="elastic"):
            cfg.run()
