"""Shape assertions against the paper's quantitative claims.

These run the headline experiments at scale=32 (32 MB server memory —
large enough that the regimes of the paper emerge) and check that the
measured ratios fall in the paper's ranges with generous slack. They are
the "does the reproduction still reproduce" regression net; exact
numbers go to EXPERIMENTS.md from the benchmark harness.
"""

import pytest

from repro.harness import figures, paper

SCALE = 32
OPS = 700

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fig6_data():
    return figures.fig6(scale=SCALE, ops=OPS)


def _lat(data, regime, label):
    return next(r["latency"] for r in data[regime] if r["design"] == label)


class TestFig1Shapes:
    def test_def_degradation_order_of_magnitude(self, fig6_data):
        ratio = (_lat(fig6_data, "nofit", "H-RDMA-Def")
                 / _lat(fig6_data, "fit", "H-RDMA-Def"))
        # Paper: 15-17x. Accept the right order of magnitude.
        assert ratio > 5.0

    def test_rdma_beats_ipoib_fit(self, fig6_data):
        ratio = (_lat(fig6_data, "fit", "IPoIB-Mem")
                 / _lat(fig6_data, "fit", "RDMA-Mem"))
        assert paper.FIG1_RDMA_VS_IPOIB_FIT.contains(ratio, slack=0.5)

    def test_hybrid_beats_inmemory_nofit(self, fig6_data):
        assert (_lat(fig6_data, "nofit", "H-RDMA-Def")
                < _lat(fig6_data, "nofit", "RDMA-Mem"))


class TestFig6Shapes:
    def test_nonb_over_def(self, fig6_data):
        ratio = (_lat(fig6_data, "nofit", "H-RDMA-Def")
                 / _lat(fig6_data, "nofit", "H-RDMA-Opt-NonB-i"))
        # Paper: 10-16x; simulator compresses somewhat. Require >=4x.
        assert ratio >= 4.0

    def test_opt_block_over_def(self, fig6_data):
        ratio = (_lat(fig6_data, "nofit", "H-RDMA-Def")
                 / _lat(fig6_data, "nofit", "H-RDMA-Opt-Block"))
        assert paper.FIG6_OPT_BLOCK_OVER_DEF.contains(ratio, slack=0.4)

    def test_nonb_over_opt_block(self, fig6_data):
        ratio = (_lat(fig6_data, "nofit", "H-RDMA-Opt-Block")
                 / _lat(fig6_data, "nofit", "H-RDMA-Opt-NonB-i"))
        assert paper.FIG6_NONB_OVER_OPT_BLOCK.contains(ratio, slack=0.4)

    def test_nonb_close_to_inmemory_rdma_when_fit(self, fig6_data):
        # "achieve performance similar to that of the in-memory design"
        assert (_lat(fig6_data, "fit", "H-RDMA-Opt-NonB-i")
                <= 1.5 * _lat(fig6_data, "fit", "RDMA-Mem"))


class TestFig7aShapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.fig7a(scale=SCALE, ops=OPS)

    def _overlap(self, rows, api, workload):
        return next(r["overlap_pct"] for r in rows
                    if r["api"] == api and r["workload"] == workload)

    def test_blocking_no_overlap(self, rows):
        assert paper.FIG7A_BLOCK_OVERLAP.contains(
            self._overlap(rows, "RDMA-Block", "read-only"))

    def test_nonb_i_high_overlap(self, rows):
        assert paper.FIG7A_NONB_I_OVERLAP.contains(
            self._overlap(rows, "RDMA-NonB-i", "read-only"))
        assert paper.FIG7A_NONB_I_OVERLAP.contains(
            self._overlap(rows, "RDMA-NonB-i", "write-heavy"))

    def test_nonb_b_read_high_write_low(self, rows):
        assert paper.FIG7A_NONB_B_READ_OVERLAP.contains(
            self._overlap(rows, "RDMA-NonB-b", "read-only"))
        assert paper.FIG7A_NONB_B_WRITE_OVERLAP.contains(
            self._overlap(rows, "RDMA-NonB-b", "write-heavy"))


class TestFig7cShapes:
    def test_throughput_gains(self):
        rows = figures.fig7c(scale=SCALE, num_clients=16, client_nodes=8,
                             num_servers=4, ops_per_client=80)
        by = {r["design"]: r["throughput"] for r in rows}
        nonb_gain = by["H-RDMA-Opt-NonB-i"] / by["H-RDMA-Def-Block"]
        assert paper.FIG7C_NONB_THROUGHPUT_GAIN.contains(nonb_gain,
                                                         slack=0.5)
        adapt_gain = by["H-RDMA-Opt-Block"] / by["H-RDMA-Def-Block"]
        assert paper.FIG7C_ADAPTIVE_IO_GAIN.contains(adapt_gain, slack=0.5)


class TestFig8Shapes:
    def test_fig8a_nonb_improvement(self):
        rows = figures.fig8a(scale=SCALE, ops=400)

        def lat(device, design, wl):
            return next(r["latency"] for r in rows
                        if r["device"] == device and r["design"] == design
                        and r["workload"] == wl)

        for device in ("SATA", "NVMe"):
            for wl in ("read-only", "write-heavy"):
                impr = 100 * (1 - lat(device, "H-RDMA-Opt-NonB-i", wl)
                              / lat(device, "H-RDMA-Opt-Block", wl))
                assert paper.FIG8A_NONB_IMPROVEMENT_PCT.contains(
                    impr, slack=0.3), (device, wl, impr)

    def test_fig8b_block_latency(self):
        from repro.units import MB

        rows = figures.fig8b(scale=SCALE, block_sizes=(2 * MB, 8 * MB))
        for device in ("SATA", "NVMe"):
            for bs in (2 * MB, 8 * MB):
                sub = {r["design"]: r["block_latency"] for r in rows
                       if r["device"] == device and r["block_size"] == bs}
                impr = 100 * (1 - sub["H-RDMA-Opt-NonB-i"]
                              / sub["H-RDMA-Opt-Block"])
                # Paper: 79-85%; accept >= 40% (simulator compresses).
                assert impr >= 40, (device, bs, impr)
