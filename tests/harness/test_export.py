"""Tests for figure-data export."""

import json

import pytest

from repro.harness.export import FIGURES, export_figure


def test_every_figure_has_an_exporter():
    assert set(FIGURES) == {"table1", "fig1", "fig2", "fig4", "fig6",
                            "fig7a", "fig7b", "fig7c", "fig8a", "fig8b"}


def test_export_table1(tmp_path):
    path = export_figure("table1", tmp_path / "t1.json")
    payload = json.loads(path.read_text())
    assert payload["figure"] == "table1"
    assert len(payload["data"]) == 5
    assert payload["repro_version"]


def test_export_fig4_roundtrips_numbers(tmp_path):
    path = export_figure("fig4", tmp_path / "f4.json")
    payload = json.loads(path.read_text())
    rows = payload["data"]
    assert all(r["direct"] > r["cached"] for r in rows)


def test_export_latency_figure_small(tmp_path):
    path = export_figure("fig1", tmp_path / "f1.json", scale=64, ops=120)
    payload = json.loads(path.read_text())
    assert payload["scale"] == 64
    assert set(payload["data"]) == {"fit", "nofit"}
    assert len(payload["data"]["fit"]) == 3


def test_unknown_figure_rejected(tmp_path):
    with pytest.raises(ValueError):
        export_figure("fig99", tmp_path / "x.json")
