"""Tests for mget batching in the blocking driver."""

from repro.core import metrics
from repro.core.profiles import H_RDMA_OPT_BLOCK, RDMA_MEM
from repro.harness.runner import run_workload, setup_cluster
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec


def make(read_fraction=1.0, ops=120):
    spec = WorkloadSpec(num_ops=ops, num_keys=256, value_length=4 * KB,
                        read_fraction=read_fraction, seed=4)
    cluster = setup_cluster(RDMA_MEM, spec, server_mem=16 * MB)
    return cluster, spec


def test_batching_preserves_op_count():
    cluster, spec = make()
    result = run_workload(cluster, spec, mget_batch=8)
    assert result.ops == 120
    apis = {r.api for r in result.records}
    assert "mget" in apis


def test_batching_reduces_read_latency_span():
    c1, s1 = make()
    unbatched = run_workload(c1, s1, mget_batch=0)
    c2, s2 = make()
    batched = run_workload(c2, s2, mget_batch=8)
    assert batched.span < unbatched.span


def test_writes_flush_pending_batch_in_order():
    """A write between reads must not be reordered past them."""
    cluster, spec = make(read_fraction=0.5)
    result = run_workload(cluster, spec, mget_batch=16)
    assert result.ops == 120
    # No operation lost, no client stuck.
    assert all(c.outstanding_count == 0 for c in cluster.clients)


def test_batch_of_one_uses_plain_get():
    cluster, spec = make(read_fraction=0.5, ops=40)
    result = run_workload(cluster, spec, mget_batch=2)
    # Singleton flushes fall back to get; batch pairs use mget.
    apis = [r.api for r in result.records]
    assert "get" in apis or "mget" in apis


def test_batching_on_hybrid_design():
    spec = WorkloadSpec(num_ops=150, num_keys=700, value_length=30 * KB,
                        read_fraction=0.9, seed=2)
    cluster = setup_cluster(H_RDMA_OPT_BLOCK, spec, server_mem=8 * MB,
                            ssd_limit=64 * MB)
    result = run_workload(cluster, spec, mget_batch=10)
    assert result.ops == 150
    assert metrics.miss_rate(result.records) == 0.0
