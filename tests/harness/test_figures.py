"""Smoke + structure tests for the per-figure experiment functions.

These use aggressive down-scaling (scale=64: 16 MB server memory) so the
whole module runs in seconds; the full-shape assertions against the
paper's claims live in test_paper_shapes.py at a larger scale.
"""

import pytest

from repro.harness import figures
from repro.units import KB, MB

SCALE = 64
OPS = 200


class TestTable1:
    def test_rows(self):
        rows = figures.table1()
        assert len(rows) == 5
        assert rows[-1]["design"] == "This Paper"


class TestFig1And2:
    @pytest.fixture(scope="class")
    def data(self):
        return figures.fig1(scale=SCALE, ops=OPS)

    def test_structure(self, data):
        assert set(data) == {"fit", "nofit"}
        assert [r["design"] for r in data["fit"]] == [
            "IPoIB-Mem", "RDMA-Mem", "H-RDMA-Def"]

    def test_rdma_beats_ipoib_when_fit(self, data):
        fit = {r["design"]: r["latency"] for r in data["fit"]}
        assert fit["RDMA-Mem"] < fit["IPoIB-Mem"]

    def test_hybrid_negligible_overhead_when_fit(self, data):
        fit = {r["design"]: r["latency"] for r in data["fit"]}
        assert fit["H-RDMA-Def"] < 1.3 * fit["RDMA-Mem"]

    def test_hybrid_beats_inmemory_when_nofit(self, data):
        nofit = {r["design"]: r["latency"] for r in data["nofit"]}
        assert nofit["H-RDMA-Def"] < nofit["RDMA-Mem"]
        assert nofit["H-RDMA-Def"] < nofit["IPoIB-Mem"]

    def test_inmemory_designs_miss_when_nofit(self, data):
        nofit = {r["design"]: r["miss_rate"] for r in data["nofit"]}
        assert nofit["RDMA-Mem"] > 0.02
        assert nofit["H-RDMA-Def"] == 0.0  # hybrid retains everything

    def test_breakdown_stages_present(self, data):
        for row in data["fit"] + data["nofit"]:
            assert set(row["breakdown"]) == {
                "slab_alloc", "cache_check_load", "cache_update",
                "server_response", "client_wait", "miss_penalty"}

    def test_fig2_is_fig1_with_breakdown(self):
        d = figures.fig2(scale=SCALE, ops=OPS)
        assert set(d) == {"fit", "nofit"}


class TestFig4:
    def test_schemes_and_shape(self):
        rows = figures.fig4(sizes=(4 * KB, 64 * KB, 1 * MB))
        for r in rows:
            assert r["direct"] > r["cached"]
            assert r["direct"] > r["mmap"]
        small, large = rows[0], rows[-1]
        assert small["mmap"] < small["cached"]
        assert large["cached"] < large["mmap"]


class TestFig6:
    @pytest.fixture(scope="class")
    def data(self):
        return figures.fig6(scale=SCALE, ops=OPS)

    def test_all_six_designs(self, data):
        assert len(data["fit"]) == 6
        assert len(data["nofit"]) == 6

    def test_nonblocking_beats_def_when_nofit(self, data):
        nofit = {r["design"]: r["latency"] for r in data["nofit"]}
        assert nofit["H-RDMA-Opt-NonB-i"] < nofit["H-RDMA-Def"] / 2
        assert nofit["H-RDMA-Opt-NonB-b"] < nofit["H-RDMA-Def"] / 2

    def test_opt_block_beats_def_when_nofit(self, data):
        nofit = {r["design"]: r["latency"] for r in data["nofit"]}
        assert nofit["H-RDMA-Opt-Block"] < nofit["H-RDMA-Def"]


class TestFig7a:
    def test_overlap_ordering(self):
        rows = figures.fig7a(scale=SCALE, ops=OPS)
        by = {(r["api"], r["workload"]): r["overlap_pct"] for r in rows}
        assert by[("RDMA-Block", "read-only")] < 5
        assert by[("RDMA-Block", "write-heavy")] < 5
        assert by[("RDMA-NonB-i", "read-only")] > 70
        assert by[("RDMA-NonB-i", "write-heavy")] > 70
        # bset blocks for buffer reuse under writes:
        assert (by[("RDMA-NonB-b", "write-heavy")]
                < by[("RDMA-NonB-i", "write-heavy")])


class TestFig7b:
    def test_nonblocking_wins_across_sizes(self):
        rows = figures.fig7b(scale=SCALE, ops=150, sizes=(4 * KB, 32 * KB))
        for r in rows:
            assert r["H-RDMA-Opt-NonB-i"] < r["H-RDMA-Def"]
            assert r["H-RDMA-Opt-NonB-b"] < r["H-RDMA-Def"]


class TestFig7c:
    def test_throughput_ordering(self):
        rows = figures.fig7c(scale=SCALE, num_clients=6, client_nodes=2,
                             num_servers=2, ops_per_client=40)
        by = {r["design"]: r["throughput"] for r in rows}
        assert by["H-RDMA-Opt-NonB-i"] > by["H-RDMA-Def-Block"]
        assert by["H-RDMA-Opt-NonB-b"] > by["H-RDMA-Def-Block"]


class TestFig8a:
    def test_devices_and_designs_covered(self):
        rows = figures.fig8a(scale=SCALE, ops=150)
        devices = {r["device"] for r in rows}
        assert devices == {"SATA", "NVMe"}
        # NVMe hybrid is faster than SATA hybrid for the same design.
        def lat(device, design, wl="read-only"):
            return next(r["latency"] for r in rows
                        if r["device"] == device and r["design"] == design
                        and r["workload"] == wl)
        assert lat("NVMe", "H-RDMA-Def-Block") < lat("SATA",
                                                     "H-RDMA-Def-Block")


class TestFig8b:
    def test_block_latency_improvement(self):
        rows = figures.fig8b(scale=SCALE, block_sizes=(2 * MB,))
        for dev in ("SATA", "NVMe"):
            sub = {r["design"]: r["block_latency"] for r in rows
                   if r["device"] == dev}
            assert sub["H-RDMA-Opt-NonB-i"] < sub["H-RDMA-Opt-Block"]
