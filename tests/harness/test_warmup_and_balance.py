"""Tests for warmup runs and server-balance metrics."""

from repro.core import metrics
from repro.core.profiles import H_RDMA_OPT_NONB_I, RDMA_MEM
from repro.harness.runner import run_workload, setup_cluster
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec


def test_warmup_records_discarded():
    spec = WorkloadSpec(num_ops=50, num_keys=128, value_length=4 * KB,
                        seed=3)
    cluster = setup_cluster(RDMA_MEM, spec, server_mem=16 * MB)
    result = run_workload(cluster, spec, warmup_ops=30)
    assert result.ops == 50  # warmup ops not in the measured records


def test_warmup_changes_initial_state():
    """After warmup the LRU reflects accesses, not preload order."""
    spec = WorkloadSpec(num_ops=100, num_keys=700, value_length=30 * KB,
                        read_fraction=1.0, seed=3)

    def miss_rate(warmup):
        cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
        res = run_workload(cluster, spec, warmup_ops=warmup)
        return metrics.miss_rate(res.records)

    cold = miss_rate(0)
    warm = miss_rate(400)
    # Warmed cache holds the hot set: fewer misses in the measured run.
    assert warm <= cold


def test_server_distribution_and_imbalance():
    spec = WorkloadSpec(num_ops=200, num_keys=512, value_length=2 * KB,
                        seed=5)
    cluster = setup_cluster(H_RDMA_OPT_NONB_I, spec, num_servers=4,
                            server_mem=16 * MB, ssd_limit=64 * MB)
    result = run_workload(cluster, spec)
    dist = metrics.server_distribution(result.records)
    assert set(dist) == {0, 1, 2, 3}
    assert sum(dist.values()) == 200
    imb = metrics.load_imbalance(result.records)
    assert 1.0 <= imb < 2.0  # modulo routing is roughly balanced


def test_load_imbalance_empty():
    assert metrics.load_imbalance([]) == 0.0
