"""Tests for the workload runner."""

import pytest

from repro.core.profiles import H_RDMA_OPT_NONB_I, RDMA_MEM
from repro.harness.runner import run_ops, run_workload, setup_cluster
from repro.units import KB, MB
from repro.workloads.generator import Op, WorkloadSpec


def small_spec(**kw):
    defaults = dict(num_ops=60, num_keys=64, value_length=4 * KB,
                    read_fraction=0.5, seed=2)
    defaults.update(kw)
    return WorkloadSpec(**defaults)


def test_setup_cluster_preloads_dataset():
    spec = small_spec()
    cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
    assert cluster.total_items == 64


def test_setup_cluster_wires_backend_value_size():
    spec = small_spec()
    cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
    assert cluster.backend._value_length_for(b"anything") == 4 * KB


def test_setup_cluster_no_preload():
    spec = small_spec()
    cluster = setup_cluster(RDMA_MEM, spec, preload=False, server_mem=8 * MB)
    assert cluster.total_items == 0


def test_blocking_run_produces_records():
    spec = small_spec()
    cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
    result = run_workload(cluster, spec)
    assert result.ops == 60
    assert result.api == "blocking"
    assert result.span > 0
    assert result.summary["mean_latency"] > 0


def test_nonblocking_run_uses_profile_api():
    spec = small_spec()
    cluster = setup_cluster(H_RDMA_OPT_NONB_I, spec, server_mem=8 * MB,
                            ssd_limit=16 * MB)
    result = run_workload(cluster, spec)
    assert result.api == "nonb-i"
    assert result.ops == 60
    # All operations drained at the end of the run.
    assert all(c.outstanding_count == 0 for c in cluster.clients)


def test_api_override():
    spec = small_spec()
    cluster = setup_cluster(H_RDMA_OPT_NONB_I, spec, server_mem=8 * MB,
                            ssd_limit=16 * MB)
    result = run_workload(cluster, spec, api="blocking")
    assert result.api == "blocking"
    assert result.summary["overlap_pct"] < 5.0


def test_unknown_api_rejected():
    spec = small_spec()
    cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
    with pytest.raises(ValueError):
        run_workload(cluster, spec, api="telepathy")


def test_run_ops_with_explicit_streams():
    spec = small_spec()
    cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
    stream = [Op("set", b"a-key", 2 * KB), Op("get", b"a-key", 0)]
    result = run_ops(cluster, [stream])
    assert result.ops == 2
    assert result.records[1].status == "HIT"


def test_window_caps_outstanding():
    spec = small_spec(num_ops=40, read_fraction=1.0)
    cluster = setup_cluster(H_RDMA_OPT_NONB_I, spec, server_mem=8 * MB,
                            ssd_limit=16 * MB)
    max_seen = {"n": 0}
    client = cluster.clients[0]
    orig_issue = client._issue

    def tracking_issue(*args, **kwargs):
        max_seen["n"] = max(max_seen["n"], client.outstanding_count)
        return orig_issue(*args, **kwargs)

    client._issue = tracking_issue
    run_workload(cluster, spec, window=4)
    assert max_seen["n"] <= 4


def test_multi_client_streams_differ():
    spec = small_spec(num_ops=30)
    cluster = setup_cluster(RDMA_MEM, spec, num_clients=2, server_mem=8 * MB)
    result = run_workload(cluster, spec)
    assert result.ops == 60
