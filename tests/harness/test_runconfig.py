"""RunConfig facade + deprecation shims for the old free functions.

The old ``setup_cluster``/``run_ops``/``run_workload`` signatures must
keep working (one release of grace), warn, and produce byte-identical
results to the RunConfig spelling they delegate to.
"""

import pytest

from repro.core.cluster import ClusterSpec
from repro.core.profiles import H_RDMA_OPT_NONB_I, RDMA_MEM
from repro.harness.runner import (
    RunConfig,
    run_ops,
    run_workload,
    setup_cluster,
)
from repro.units import KB, MB
from repro.workloads.generator import Op, WorkloadSpec


def small_spec(**kw):
    defaults = dict(num_ops=60, num_keys=64, value_length=4 * KB,
                    read_fraction=0.5, seed=2)
    defaults.update(kw)
    return WorkloadSpec(**defaults)


def fingerprint(result):
    return [(r.op, r.key_length, r.status, r.t_issue, r.t_complete,
             r.blocked_time, tuple(sorted(r.stages.items())))
            for r in result.records]


# -- the new facade ---------------------------------------------------------


def test_runconfig_build_and_run():
    cfg = RunConfig(profile=H_RDMA_OPT_NONB_I, workload=small_spec(),
                    cluster=ClusterSpec(server_mem=8 * MB,
                                        ssd_limit=16 * MB))
    result = cfg.run()
    assert result.ops == 60
    assert result.api == "nonb-i"
    assert result.summary["mean_latency"] > 0


def test_runconfig_spec_overrides():
    cfg = RunConfig(profile=RDMA_MEM, workload=small_spec(),
                    spec_overrides=dict(num_servers=2, server_mem=8 * MB))
    cluster = cfg.build()
    assert len(cluster.servers) == 2
    assert cluster.total_items == 64  # preloaded


def test_runconfig_cluster_and_overrides_exclusive():
    cfg = RunConfig(profile=RDMA_MEM, workload=small_spec(),
                    cluster=ClusterSpec(),
                    spec_overrides=dict(num_servers=2))
    with pytest.raises(TypeError):
        cfg.build()


def test_runconfig_run_requires_workload():
    with pytest.raises(ValueError):
        RunConfig(profile=RDMA_MEM).run()


def test_runconfig_build_once_run_many():
    cfg = RunConfig(profile=RDMA_MEM, workload=small_spec(),
                    spec_overrides=dict(server_mem=8 * MB))
    cluster = cfg.build()
    a = cfg.run(cluster=cluster)
    b = cfg.run(cluster=cluster)
    assert a.ops == b.ops == 60  # reset_metrics isolated the runs


def test_runconfig_warmup_discards_records():
    cfg = RunConfig(profile=RDMA_MEM, workload=small_spec(),
                    spec_overrides=dict(server_mem=8 * MB),
                    warmup_ops=20)
    result = cfg.run()
    assert result.ops == 60  # warmup records never surface


def test_runconfig_run_streams():
    cfg = RunConfig(profile=RDMA_MEM,
                    spec_overrides=dict(server_mem=8 * MB))
    stream = [Op("set", b"a-key", 2 * KB), Op("get", b"a-key", 0)]
    result = cfg.run_streams([stream])
    assert result.ops == 2
    assert result.records[1].status == "HIT"


# -- deprecation shims ------------------------------------------------------


def test_shims_warn():
    spec = small_spec()
    with pytest.warns(DeprecationWarning, match="setup_cluster is deprecated"):
        cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
    with pytest.warns(DeprecationWarning, match="run_workload is deprecated"):
        run_workload(cluster, spec)
    with pytest.warns(DeprecationWarning, match="run_ops is deprecated"):
        run_ops(cluster, [[Op("get", b"k", 0)]])


def test_shim_matches_runconfig_byte_for_byte():
    """Old spelling and new spelling replay the identical timeline."""
    spec = small_spec()
    cluster_spec = ClusterSpec(num_servers=2, num_clients=2,
                               server_mem=8 * MB, ssd_limit=16 * MB)

    with pytest.warns(DeprecationWarning):
        old_cluster = setup_cluster(H_RDMA_OPT_NONB_I, spec,
                                    cluster_spec=cluster_spec)
        old = run_workload(old_cluster, spec, warmup_ops=10)

    cfg = RunConfig(profile=H_RDMA_OPT_NONB_I, workload=spec,
                    cluster=cluster_spec, warmup_ops=10)
    new = cfg.run()

    assert fingerprint(old) == fingerprint(new)
    assert old.span == new.span
    assert old.summary == new.summary


def test_shim_run_ops_matches_run_streams():
    spec = small_spec()
    stream = [Op("set", b"s-key", 2 * KB), Op("get", b"s-key", 0),
              Op("get", b"other", 0)]

    with pytest.warns(DeprecationWarning):
        old_cluster = setup_cluster(RDMA_MEM, spec, server_mem=8 * MB)
        old = run_ops(old_cluster, [stream], api="blocking")

    cfg = RunConfig(profile=RDMA_MEM, workload=spec, api="blocking",
                    spec_overrides=dict(server_mem=8 * MB))
    new = cfg.run_streams([stream])

    assert fingerprint(old) == fingerprint(new)
