"""Tests for the artifact-evaluation claim checker."""

from repro.harness import paper
from repro.harness.check import Verdict, _grade, run_checks, summarize_verdicts


class TestGrading:
    def test_inside_range_passes(self):
        c = paper.Claim("f", "d", 10.0, 16.0)
        assert _grade(c, 12.0).grade == "PASS"

    def test_slack_extends_range(self):
        c = paper.Claim("f", "d", 10.0, 16.0)
        assert _grade(c, 8.0, slack=0.25).grade == "PASS"

    def test_right_direction_wrong_magnitude_is_shape(self):
        c = paper.Claim("f", "d", 10.0, 16.0)
        assert _grade(c, 3.0).grade == "SHAPE"

    def test_wrong_direction_fails(self):
        c = paper.Claim("f", "d", 10.0, 16.0)
        assert _grade(c, 0.7).grade == "FAIL"

    def test_verdict_row_shape(self):
        v = Verdict(paper.FIG1_DEF_DEGRADATION, 11.0, "PASS")
        row = v.row
        assert row["grade"] == "PASS"
        assert row["paper"] == "15-17"
        assert row["measured"] == "11.00"


def test_run_checks_small_scale_no_failures():
    verdicts = run_checks(scale=48, ops=300)
    summary = summarize_verdicts(verdicts)
    assert summary["FAIL"] == 0
    assert summary["PASS"] >= 6
    assert len(verdicts) == 12


def test_cli_check_command(capsys):
    from repro.cli import main

    rc = main(["check", "--scale", "48", "--ops", "300"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Paper-claim check" in out
    assert "FAIL" in out  # summary line
