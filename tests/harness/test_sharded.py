"""Sharded event domains must reproduce the single-simulator oracle.

The contract (see ``repro/harness/sharded.py``): on schedules free of
cross-domain equal-instant collisions — pinned here with a nanosecond
``client_stagger`` — a sharded run is byte-identical to the
single-process reference: same per-op records, same history, same
timestamps. The multiprocessing driver must match the serial sharded
driver exactly, and unshardable configurations must refuse loudly
rather than silently de-shard.
"""

import dataclasses

import pytest

from repro.core.cluster import ClusterSpec, ReplicationConfig
from repro.core.profiles import ALL_PROFILES, FATCACHE, IPOIB_MEM
from repro.faults import FaultPlan
from repro.harness.runner import RunConfig
from repro.harness.sharded import (
    ShardingUnsupported,
    _owned_servers,
    _owner_rank,
)
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec, generate_ops

#: A few nanoseconds of per-client start stagger: breaks the lock-step
#: symmetry of identical clients so no two cross-domain deliveries
#: collide on exactly equal timestamps (the one regime where sharded
#: tie-breaking may diverge from the single-simulator posting order).
STAGGER = 1.3e-8


def _cfg(profile=IPOIB_MEM, shards=1, workers=0, **kw):
    defaults = dict(
        profile=profile,
        workload=WorkloadSpec(num_ops=50, num_keys=48, value_length=256,
                              read_fraction=0.5, seed=5),
        cluster=ClusterSpec(num_servers=3, num_clients=4,
                            server_mem=1 * MB, ssd_limit=4 * MB),
        client_stagger=STAGGER,
        shard_domains=shards,
        shard_workers=workers,
    )
    defaults.update(kw)
    return RunConfig(**defaults)


def _canon_history(events):
    """Same-instant completions of different clients fed by different
    server domains may interleave differently in the flat history list;
    per-client order is what the model defines."""
    return sorted(events, key=lambda e: (e.client, e.req_id, e.t_issue))


def _assert_equivalent(single, sharded):
    assert len(single.records) > 0
    assert single.records == sharded.records
    assert single.span == sharded.span
    assert single.summary == sharded.summary
    if single.history is not None:
        assert _canon_history(single.history) == \
            _canon_history(sharded.history)


class TestByteIdentity:
    @pytest.mark.parametrize("profile", [IPOIB_MEM, FATCACHE],
                             ids=lambda p: p.key)
    def test_matches_single_process(self, profile):
        single = _cfg(profile).run()
        sharded = _cfg(profile, shards=4).run()
        _assert_equivalent(single, sharded)

    def test_matches_with_warmup_and_history(self):
        kw = dict(warmup_ops=20, check_consistency=True)
        single = _cfg(**kw).run()
        sharded = _cfg(shards=4, **kw).run()
        _assert_equivalent(single, sharded)
        assert single.consistency.ok and sharded.consistency.ok

    def test_matches_on_legacy_heap_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_LEGACY_HEAP", "1")
        single = _cfg().run()
        sharded = _cfg(shards=4).run()
        _assert_equivalent(single, sharded)

    def test_matches_under_faults(self):
        plan = FaultPlan.parse(["crash:server=1,at=200us,duration=1ms"])
        kw = dict(fault_plan=plan, check_consistency=True,
                  cluster=ClusterSpec(num_servers=3, num_clients=4,
                                      server_mem=1 * MB, ssd_limit=4 * MB,
                                      request_timeout=0.002),
                  workload=WorkloadSpec(num_ops=80, num_keys=64,
                                        value_length=256, seed=9))
        single = _cfg(**kw).run()
        sharded = _cfg(shards=4, **kw).run()
        _assert_equivalent(single, sharded)
        assert single.consistency.ok and sharded.consistency.ok

    def test_matches_on_explicit_streams(self):
        spec = WorkloadSpec(num_ops=40, num_keys=32, value_length=512,
                            seed=3)
        streams = [generate_ops(spec, client_index=i) for i in range(4)]
        single = _cfg(workload=spec).run_streams(streams)
        sharded = _cfg(workload=spec, shards=3).run_streams(streams)
        _assert_equivalent(single, sharded)

    def test_more_domains_than_servers_clamps(self):
        single = _cfg().run()
        sharded = _cfg(shards=10).run()  # 3 servers -> 3 server domains
        _assert_equivalent(single, sharded)

    def test_ycsb_stream_equivalence(self):
        kw = dict(ycsb="A",
                  workload=WorkloadSpec(num_ops=40, num_keys=64,
                                        value_length=1 * KB, seed=17))
        single = _cfg(**kw).run()
        sharded = _cfg(shards=4, **kw).run()
        _assert_equivalent(single, sharded)


class TestMultiprocessing:
    def test_mp_matches_serial_sharded(self):
        serial = _cfg(shards=4, check_consistency=True).run()
        forked = _cfg(shards=4, workers=2, check_consistency=True).run()
        _assert_equivalent(serial, forked)
        assert forked.consistency.ok

    def test_mp_matches_single_process(self):
        single = _cfg().run()
        forked = _cfg(shards=3, workers=2).run()
        _assert_equivalent(single, forked)


class TestSharding:
    def test_ownership_partition(self):
        for shards in (1, 2, 3, 5):
            owned = [si for rank in range(1, shards + 1)
                     for si in _owned_servers(rank, 7, shards)]
            assert sorted(owned) == list(range(7))
            for si in range(7):
                assert si in _owned_servers(_owner_rank(si, shards), 7,
                                            shards)

    def test_events_processed_sums_domains(self):
        single = _cfg().run()
        sharded = _cfg(shards=4).run()
        # Captured messages add one local-delivery timeout per crossing
        # and injections are extra pre-triggered events, so the sharded
        # total exceeds the single-simulator count; both are recorded.
        assert single.events_processed > 0
        assert sharded.events_processed > single.events_processed


class TestRefusals:
    def test_rdma_profiles_refuse(self):
        rdma = [p for p in ALL_PROFILES.values() if p.transport != "ipoib"]
        assert rdma, "expected RDMA profiles in the registry"
        with pytest.raises(ShardingUnsupported, match="RDMA"):
            _cfg(profile=rdma[0], shards=2).run()

    def test_replication_refuses(self):
        spec = ClusterSpec(num_servers=3, num_clients=2,
                           server_mem=1 * MB, ssd_limit=4 * MB,
                           replication=ReplicationConfig(factor=2))
        with pytest.raises(ShardingUnsupported, match="replication"):
            _cfg(cluster=spec, shards=2).run()

    def test_consensus_refuses(self):
        spec = ClusterSpec(num_servers=3, num_clients=2,
                           server_mem=1 * MB, ssd_limit=4 * MB,
                           replication=ReplicationConfig(consensus=True))
        with pytest.raises(ShardingUnsupported, match="consensus"):
            _cfg(cluster=spec, shards=2).run()

    def test_profiling_refuses(self):
        spec = ClusterSpec(num_servers=2, num_clients=2,
                           server_mem=1 * MB, ssd_limit=4 * MB,
                           profile=True)
        with pytest.raises(ShardingUnsupported, match="profiling"):
            _cfg(cluster=spec, shards=2).run()

    def test_injected_sim_refuses(self):
        from repro.sim import Simulator
        with pytest.raises(ShardingUnsupported, match="Simulator"):
            _cfg(shards=2, sim=Simulator()).run()

    def test_prebuilt_cluster_rejected(self):
        cfg = _cfg(shards=2)
        cluster = dataclasses.replace(cfg, shard_domains=1).build()
        with pytest.raises(ValueError, match="per-domain"):
            cfg.run(cluster=cluster)

    def test_too_few_domains_refuse(self):
        cfg = _cfg(shards=1)
        with pytest.raises(ShardingUnsupported, match="at least 2"):
            from repro.harness.sharded import run_sharded
            run_sharded(cfg)
