"""Smoke tests for the sensitivity-analysis sweeps (tiny scale)."""

import pytest

from repro.harness import sensitivity


def test_ssd_latency_sweep_structure():
    rows = sensitivity.sweep_ssd_latency(multipliers=(1.0, 4.0),
                                         scale=64, ops=150)
    assert [r["latency_multiplier"] for r in rows] == [1.0, 4.0]
    assert all(r["nonb_gain"] > 1.0 for r in rows)
    assert rows[1]["def_latency"] > rows[0]["def_latency"]


def test_theta_sweep_structure():
    rows = sensitivity.sweep_zipf_theta(thetas=(0.6, 1.1),
                                        scale=64, ops=150)
    assert all(r["nonb_gain"] > 1.0 for r in rows)
    # Hotter workloads touch the SSD less: Def gets faster.
    assert rows[1]["def_latency"] < rows[0]["def_latency"]


def test_pagecache_sweep_structure():
    rows = sensitivity.sweep_pagecache(sizes_mb=(4, 64), scale=64, ops=150)
    assert len(rows) == 2
    # Page cache never changes the direct-I/O design's latency.
    assert rows[0]["def_latency"] == pytest.approx(rows[1]["def_latency"])


def test_bandwidth_sweep_structure():
    rows = sensitivity.sweep_ssd_bandwidth(multipliers=(0.5, 2.0),
                                           scale=64, ops=150)
    assert all(r["nonb_gain"] > 1.0 for r in rows)


def test_network_sweep_shows_io_bound_regime():
    rows = sensitivity.sweep_network(scale=64, ops=150)
    assert [r["fabric"] for r in rows] == ["FDR 56G", "EDR 100G"]
    fdr, edr = rows
    # Faster fabric: at most marginal movement — the SSD dominates.
    assert edr["def_latency"] <= fdr["def_latency"]
    assert edr["def_latency"] > 0.7 * fdr["def_latency"]
    assert all(r["nonb_gain"] > 1.0 for r in rows)


def test_backend_penalty_sweep_structure():
    rows = sensitivity.sweep_backend_penalty(penalties_ms=(0.05, 5.0),
                                             scale=64, ops=150)
    # Fast backend favours in-memory; slow backend favours hybrid.
    assert not rows[0]["hybrid_wins"]
    assert rows[1]["hybrid_wins"]
    # The hybrid's latency is penalty-independent.
    assert rows[0]["hybrid_latency"] == pytest.approx(
        rows[1]["hybrid_latency"])
