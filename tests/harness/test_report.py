"""Tests for report formatting and the encoded paper claims."""

from repro.harness import paper
from repro.harness.report import ascii_table, fmt_pct, fmt_ratio, fmt_us, markdown_table
from repro.units import MS, US


class TestFormatters:
    def test_fmt_us_small(self):
        assert fmt_us(12.34 * US) == "12.3 us"

    def test_fmt_us_switches_to_ms(self):
        assert fmt_us(2.5 * MS) == "2.50 ms"

    def test_ratio_and_pct(self):
        assert fmt_ratio(2.0) == "2.00x"
        assert fmt_pct(12.3456) == "12.3%"


class TestAsciiTable:
    def test_renders_rows(self):
        out = ascii_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}],
                          title="t")
        assert "t" in out
        assert "| a " in out and "| 22" in out

    def test_empty(self):
        assert "(no rows)" in ascii_table([], title="empty")

    def test_column_selection(self):
        out = ascii_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[1]

    def test_markdown(self):
        out = markdown_table([{"x": 1}])
        assert out.splitlines()[0] == "| x |"
        assert "| 1 |" in out


class TestClaims:
    def test_claim_contains(self):
        c = paper.Claim("f", "d", 10.0, 16.0)
        assert c.contains(12.0)
        assert not c.contains(9.0)
        assert c.contains(9.0, slack=0.2)

    def test_all_claims_collected(self):
        assert len(paper.ALL_CLAIMS) >= 12
        assert all(c.low <= c.high for c in paper.ALL_CLAIMS)
        assert all(c.figure.startswith("fig") for c in paper.ALL_CLAIMS)
