"""Tests for the page cache: residency, write-back, throttling."""

from repro.sim import Simulator
from repro.storage.device import BlockDevice
from repro.storage.pagecache import PageCache, _cluster_runs
from repro.storage.params import PageCacheParams, SATA_SSD
from repro.units import KB, MB


def make_cache(size_bytes=1 * MB, dirty_ratio=0.5, **kw):
    sim = Simulator()
    dev = BlockDevice(sim, SATA_SSD)
    params = PageCacheParams(size_bytes=size_bytes, dirty_ratio=dirty_ratio, **kw)
    return sim, dev, PageCache(sim, dev, params)


def run_gen(sim, gen):
    """Drive a cache generator to completion, returning its value."""
    return sim.run(until=sim.spawn(gen))


def test_write_is_memcpy_speed_not_device_speed():
    sim, dev, cache = make_cache()
    start = sim.now
    run_gen(sim, cache.write(0, 64 * KB))
    elapsed = sim.now - start
    assert elapsed < SATA_SSD.write_time(64 * KB) / 10


def test_write_marks_pages_dirty_then_writeback_cleans():
    sim, dev, cache = make_cache()
    run_gen(sim, cache.write(0, 64 * KB))
    assert cache.dirty_pages == 16
    run_gen(sim, cache.sync())
    assert cache.dirty_pages == 0
    assert dev.stats.bytes_written == 64 * KB


def test_read_hit_costs_memcpy_only():
    sim, dev, cache = make_cache()
    run_gen(sim, cache.write(0, 64 * KB))
    reads_before = dev.stats.reads
    missed = run_gen(sim, cache.read(0, 64 * KB))
    assert missed == 0
    assert dev.stats.reads == reads_before


def test_read_miss_fetches_from_device():
    sim, dev, cache = make_cache()
    missed = run_gen(sim, cache.read(0, 64 * KB))
    assert missed == 64 * KB
    assert dev.stats.reads >= 1
    assert dev.stats.bytes_read == 64 * KB
    # Now resident:
    assert cache.contains(0, 64 * KB)


def test_partial_hit_reads_only_missing_runs():
    sim, dev, cache = make_cache()
    run_gen(sim, cache.write(0, 16 * KB))  # pages 0-3 resident
    missed = run_gen(sim, cache.read(0, 32 * KB))  # pages 0-7
    assert missed == 16 * KB


def test_eviction_bounded_residency():
    sim, dev, cache = make_cache(size_bytes=64 * KB)  # 16 pages
    run_gen(sim, cache.read(0, 64 * KB))
    run_gen(sim, cache.read(1 * MB, 64 * KB))
    assert cache.resident_pages <= 16
    assert not cache.contains(0, 64 * KB)


def test_dirty_throttling_blocks_writers():
    sim, dev, cache = make_cache(size_bytes=64 * KB, dirty_ratio=0.25)
    for i in range(8):
        run_gen(sim, cache.write(i * 16 * KB, 16 * KB))
    assert cache.stats.throttle_events > 0


def test_discard_drops_dirty_pages():
    sim, dev, cache = make_cache()
    run_gen(sim, cache.write(0, 64 * KB))
    cache.discard(0, 64 * KB)
    assert cache.dirty_pages == 0
    assert not cache.contains(0, 4 * KB)


def test_sync_flushes_everything():
    sim, dev, cache = make_cache()
    run_gen(sim, cache.write(0, 128 * KB))
    run_gen(sim, cache.sync())
    assert cache.dirty_pages == 0
    assert dev.stats.bytes_written == 128 * KB


def test_mmap_origin_writes_back_in_smaller_clusters():
    sim1, dev1, cache1 = make_cache(size_bytes=8 * MB)
    run_gen(sim1, cache1.write(0, 1 * MB, origin="write"))
    run_gen(sim1, cache1.sync())

    sim2, dev2, cache2 = make_cache(size_bytes=8 * MB)
    run_gen(sim2, cache2.write(0, 1 * MB, origin="mmap"))
    run_gen(sim2, cache2.sync())

    # Same bytes, more (smaller) device ops for the mmap origin.
    assert dev1.stats.bytes_written == dev2.stats.bytes_written == 1 * MB
    assert dev2.stats.writes > dev1.stats.writes


def test_hit_rate_stat():
    sim, dev, cache = make_cache()
    run_gen(sim, cache.write(0, 64 * KB))
    run_gen(sim, cache.read(0, 64 * KB))
    run_gen(sim, cache.read(10 * MB, 64 * KB))
    assert 0.0 < cache.stats.hit_rate < 1.0


def test_cluster_runs_helper():
    assert _cluster_runs([], 4096) == []
    assert _cluster_runs([0, 1, 2], 4096) == [3 * 4096]
    assert _cluster_runs([0, 2, 3, 9], 4096) == [4096, 2 * 4096, 4096]
