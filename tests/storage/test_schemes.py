"""Tests for the direct/cached/mmap I/O schemes (Figure 4 mechanics)."""

import pytest

from repro.sim import Simulator
from repro.storage.device import BlockDevice
from repro.storage.pagecache import PageCache
from repro.storage.params import PageCacheParams, SATA_SSD
from repro.storage.schemes import CachedIO, DirectIO, MmapIO, make_scheme
from repro.units import KB, MB


@pytest.fixture()
def rig():
    sim = Simulator()
    dev = BlockDevice(sim, SATA_SSD)
    cache = PageCache(sim, dev, PageCacheParams(size_bytes=64 * MB))
    return sim, dev, cache


def timed(sim, gen):
    start = sim.now
    sim.run(until=sim.spawn(gen))
    return sim.now - start


class TestDirectIO:
    def test_write_pays_device_time(self, rig):
        sim, dev, _ = rig
        scheme = DirectIO(sim, dev)
        t = timed(sim, scheme.write(0, 1 * MB))
        assert t == pytest.approx(SATA_SSD.write_time(1 * MB), rel=1e-9)

    def test_read_pays_device_time(self, rig):
        sim, dev, _ = rig
        scheme = DirectIO(sim, dev)
        t = timed(sim, scheme.read(0, 32 * KB))
        assert t == pytest.approx(SATA_SSD.read_time(32 * KB), rel=1e-9)


class TestCachedIO:
    def test_write_much_faster_than_direct(self, rig):
        sim, dev, cache = rig
        scheme = CachedIO(sim, dev, cache)
        t = timed(sim, scheme.write(0, 1 * MB))
        assert t < SATA_SSD.write_time(1 * MB) / 5

    def test_read_after_write_hits_cache(self, rig):
        sim, dev, cache = rig
        scheme = CachedIO(sim, dev, cache)
        timed(sim, scheme.write(0, 64 * KB))
        reads_before = dev.stats.reads
        t = timed(sim, scheme.read(0, 64 * KB))
        assert dev.stats.reads == reads_before
        assert t < SATA_SSD.read_time(64 * KB) / 5

    def test_cold_read_pays_device(self, rig):
        sim, dev, cache = rig
        scheme = CachedIO(sim, dev, cache)
        t = timed(sim, scheme.read(1 * MB, 32 * KB))
        assert t >= SATA_SSD.read_latency


class TestMmapIO:
    def test_small_write_beats_cached(self, rig):
        sim, dev, cache = rig
        mm = MmapIO(sim, dev, cache)
        ca = CachedIO(sim, dev, cache)
        t_mmap = timed(sim, mm.write(0, 4 * KB))
        t_cached = timed(sim, ca.write(10 * MB, 4 * KB))
        assert t_mmap < t_cached

    def test_large_write_loses_to_cached_on_fault_cost(self, rig):
        sim, dev, cache = rig
        mm = MmapIO(sim, dev, cache)
        ca = CachedIO(sim, dev, cache)
        t_mmap = timed(sim, mm.write(0, 1 * MB))
        t_cached = timed(sim, ca.write(10 * MB, 1 * MB))
        assert t_cached < t_mmap

    def test_second_touch_has_no_fault_cost(self, rig):
        sim, dev, cache = rig
        mm = MmapIO(sim, dev, cache)
        t_first = timed(sim, mm.write(0, 64 * KB))
        t_second = timed(sim, mm.write(0, 64 * KB))
        assert t_second < t_first


class TestFigure4Shape:
    """The crossover the adaptive allocator exploits."""

    def test_both_buffered_schemes_beat_direct_for_all_sizes(self, rig):
        sim, dev, cache = rig
        for size in (4 * KB, 64 * KB, 1 * MB):
            t_direct = timed(sim, DirectIO(sim, dev).write(0, size))
            t_cached = timed(sim, CachedIO(sim, dev, cache).write(20 * MB, size))
            t_mmap = timed(sim, MmapIO(sim, dev, cache).write(40 * MB, size))
            assert t_cached < t_direct
            assert t_mmap < t_direct

    def test_crossover_exists_between_mmap_and_cached(self, rig):
        sim, dev, cache = rig
        t_mmap_small = timed(sim, MmapIO(sim, dev, cache).write(0, 4 * KB))
        t_cached_small = timed(sim, CachedIO(sim, dev, cache).write(60 * MB, 4 * KB))
        t_mmap_large = timed(sim, MmapIO(sim, dev, cache).write(10 * MB, 1 * MB))
        t_cached_large = timed(sim, CachedIO(sim, dev, cache).write(30 * MB, 1 * MB))
        assert t_mmap_small < t_cached_small
        assert t_cached_large < t_mmap_large


class TestFactory:
    def test_make_scheme_variants(self, rig):
        sim, dev, cache = rig
        assert isinstance(make_scheme("direct", sim, dev), DirectIO)
        assert isinstance(make_scheme("cached", sim, dev, cache), CachedIO)
        assert isinstance(make_scheme("mmap", sim, dev, cache), MmapIO)

    def test_make_scheme_requires_cache_for_buffered(self, rig):
        sim, dev, _ = rig
        with pytest.raises(ValueError):
            make_scheme("cached", sim, dev, None)
        with pytest.raises(ValueError):
            make_scheme("bogus", sim, dev, None)

    def test_discard_clears_cache_state(self, rig):
        sim, dev, cache = rig
        scheme = CachedIO(sim, dev, cache)
        timed(sim, scheme.write(0, 64 * KB))
        scheme.discard(0, 64 * KB)
        assert not cache.contains(0, 4 * KB)
        # DirectIO discard is a no-op but must exist.
        DirectIO(sim, dev).discard(0, 64 * KB)
