"""Tests for the queued block device model."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.storage.device import BlockDevice
from repro.storage.params import NVME_SSD, RAMDISK, SATA_SSD, DeviceParams
from repro.units import KB, MB, US


def test_read_time_is_latency_plus_bandwidth():
    sim = Simulator()
    dev = BlockDevice(sim, SATA_SSD)
    p = dev.read(1 * MB)
    sim.run(until=p)
    assert sim.now == pytest.approx(SATA_SSD.read_time(1 * MB), rel=1e-9)


def test_write_slower_than_read_on_sata():
    assert SATA_SSD.write_time(1 * MB) > SATA_SSD.read_time(1 * MB)


def test_nvme_write_latency_lower_than_read():
    # P3700's power-loss-protected write buffer: writes complete fast.
    assert NVME_SSD.write_latency < NVME_SSD.read_latency


def test_nvme_much_faster_than_sata_for_slab_flush():
    assert SATA_SSD.write_time(1 * MB) > 4 * NVME_SSD.write_time(1 * MB)


def test_sector_alignment_rounds_up():
    p = DeviceParams(name="t", read_latency=0, write_latency=0,
                     read_bandwidth=1e6, write_bandwidth=1e6, sector=4096)
    assert p.read_time(1) == pytest.approx(4096 / 1e6)
    assert p.read_time(4096) == pytest.approx(4096 / 1e6)
    assert p.read_time(4097) == pytest.approx(8192 / 1e6)
    assert p.read_time(0) == 0.0


def test_queued_requests_overlap_latency_but_share_bandwidth():
    """NCQ semantics: deep queues hide latency, not bandwidth."""
    sim = Simulator()
    dev = BlockDevice(sim, SATA_SSD)
    done = []
    n = SATA_SSD.parallelism

    def issue(sim, i):
        yield dev.read(1 * MB)
        done.append(sim.now)

    for i in range(n):
        sim.spawn(issue(sim, i))
    sim.run()
    # All latencies overlap; the shared pipe serializes the transfers.
    xfer = SATA_SSD.aligned(1 * MB) / SATA_SSD.read_bandwidth
    expected_last = SATA_SSD.read_latency + n * xfer
    assert max(done) == pytest.approx(expected_last, rel=1e-6)
    assert max(done) < n * SATA_SSD.read_time(1 * MB)  # better than serial


def test_parallelism_bounds_latency_overlap():
    sim = Simulator()
    dev = BlockDevice(sim, SATA_SSD)
    done = []
    n = SATA_SSD.parallelism + 2  # two requests beyond the queue slots

    def issue(sim, i):
        yield dev.read(4 * KB)
        done.append(sim.now)

    for i in range(n):
        sim.spawn(issue(sim, i))
    sim.run()
    # The first `parallelism` finish around one latency; the extras pay
    # an additional latency round.
    assert max(done) > 1.9 * SATA_SSD.read_latency


def test_nvme_overlaps_requests_up_to_parallelism():
    sim = Simulator()
    dev = BlockDevice(sim, NVME_SSD)
    done = []

    def issue(sim, i):
        yield dev.read(4 * KB)
        done.append(sim.now)

    for i in range(NVME_SSD.parallelism):
        sim.spawn(issue(sim, i))
    sim.run()
    xfer = NVME_SSD.aligned(4 * KB) / NVME_SSD.read_bandwidth
    upper = NVME_SSD.read_latency + NVME_SSD.parallelism * xfer
    assert all(t <= upper * 1.01 for t in done)


def test_queue_depth_counters():
    sim = Simulator()
    dev = BlockDevice(sim, SATA_SSD)
    for _ in range(SATA_SSD.parallelism + 4):
        dev.read(4 * KB)
    sim.run(until=10 * US)
    assert dev.in_service == SATA_SSD.parallelism
    assert dev.queue_length == 4


def test_stats_accumulate():
    sim = Simulator()
    dev = BlockDevice(sim, RAMDISK)

    def work(sim):
        yield dev.write(64 * KB)
        yield dev.read(32 * KB)

    sim.spawn(work(sim))
    sim.run()
    assert dev.stats.writes == 1 and dev.stats.reads == 1
    assert dev.stats.bytes_written == 64 * KB
    assert dev.stats.bytes_read == 32 * KB
    assert dev.stats.busy_time > 0
    snap = dev.stats.snapshot()
    assert snap["reads"] == 1


def test_negative_io_rejected():
    sim = Simulator()
    dev = BlockDevice(sim, RAMDISK)
    dev.read(-1)
    with pytest.raises(SimulationError):
        sim.run()
