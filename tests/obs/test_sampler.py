"""Tests for the periodic gauge sampler."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler
from repro.sim import Simulator


def test_interval_must_be_positive():
    sim = Simulator()
    reg = MetricsRegistry(clock=lambda: sim.now)
    with pytest.raises(ValueError):
        Sampler(sim, reg, 0.0)


def test_sampler_records_series_and_terminates():
    sim = Simulator()
    reg = MetricsRegistry(clock=lambda: sim.now)
    state = {"depth": 0}
    reg.gauge("queue_depth", fn=lambda: state["depth"])

    def workload():
        state["depth"] = 3
        yield sim.timeout(0.010)
        state["depth"] = 1
        yield sim.timeout(0.010)
        state["depth"] = 0

    sampler = Sampler(sim, reg, interval=0.001)
    sampler.start()
    sim.spawn(workload())
    # run() drains the schedule: the sampler must self-terminate.
    sim.run()
    pts = sampler.series["queue_depth"]
    assert len(pts) >= 20
    times = [t for t, _ in pts]
    assert times == sorted(times)
    # The first sample sees depth already set? No: sampler starts at t=0
    # before the workload runs -- depends on spawn order; just check the
    # sampled values trace the gauge's step function.
    assert {v for _, v in pts} <= {0, 1, 3}
    assert pts[-1][1] == 0  # final drain sample sees the settled state
    assert pts[-1][0] >= 0.020


def test_sampler_is_deterministic():
    def run():
        sim = Simulator()
        reg = MetricsRegistry(clock=lambda: sim.now)
        state = {"v": 0}
        reg.gauge("g", fn=lambda: state["v"])

        def workload():
            for i in range(10):
                state["v"] = i
                yield sim.timeout(0.0017)

        sampler = Sampler(sim, reg, interval=0.0005)
        sampler.start()
        sim.spawn(workload())
        sim.run()
        return sampler.series["g"]

    assert run() == run()


def test_sampler_does_not_change_sim_outcome():
    """Event timing with a sampler equals timing without one."""

    def run(with_sampler: bool):
        sim = Simulator()
        reg = MetricsRegistry(clock=lambda: sim.now)
        reg.gauge("g", fn=lambda: 1)
        completions = []

        def workload(i):
            yield sim.timeout(0.001 * (i + 1))
            completions.append((i, sim.now))

        for i in range(5):
            sim.spawn(workload(i))
        if with_sampler:
            Sampler(sim, reg, interval=0.0003).start()
        sim.run()
        return completions

    assert run(True) == run(False)


def test_stop_ends_sampling():
    sim = Simulator()
    reg = MetricsRegistry(clock=lambda: sim.now)
    reg.gauge("g", fn=lambda: 1)
    sampler = Sampler(sim, reg, interval=0.001)
    sampler.start()

    def stopper():
        yield sim.timeout(0.0055)
        sampler.stop()

    def long_tail():
        yield sim.timeout(0.100)

    sim.spawn(stopper())
    sim.spawn(long_tail())
    sim.run()
    # Stopped mid-run: no samples near the 100 ms tail.
    assert max(t for t, _ in sampler.series["g"]) < 0.010
