"""End-to-end observability acceptance: parity + snapshot completeness.

The ISSUE's acceptance criteria: a benchmark run with tracing enabled
must produce a valid Chrome trace and a registry snapshot containing
per-device read/write counts and queue-depth series, per-worker busy
fraction, eviction/flush counters, NIC bytes, and client
window-occupancy series — while reporting latency/throughput
byte-identical to the same run with observability disabled.
"""

import json

from repro import profiles
from repro.core.cluster import ClusterSpec
from repro.harness.runner import run_workload, setup_cluster
from repro.obs.export import chrome_trace
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec


#: Working set ~2x server memory => SSD flushes, reads, promotions.
WORKLOAD = WorkloadSpec(num_ops=250, num_keys=800, value_length=16 * KB,
                        read_fraction=0.5, distribution="zipf", seed=7)


def _run(observe: bool, trace: bool):
    spec = ClusterSpec(num_servers=1, num_clients=2, server_mem=8 * MB,
                       ssd_limit=64 * MB, observe=observe, trace=trace)
    cluster = setup_cluster(profiles.H_RDMA_OPT_NONB_B, WORKLOAD,
                            cluster_spec=spec)
    result = run_workload(cluster, WORKLOAD)
    return cluster, result


def test_observed_run_matches_unobserved_run_exactly():
    _, base = _run(observe=False, trace=False)
    _, obs = _run(observe=True, trace=True)
    # Byte-identical measurements: observability must not perturb the sim.
    assert obs.summary == base.summary
    assert [r.t_complete for r in obs.records] == \
           [r.t_complete for r in base.records]
    assert base.obs is None
    assert obs.obs is not None


def test_snapshot_contains_all_required_signals():
    cluster, result = _run(observe=True, trace=True)
    snap = cluster.obs.snapshot()
    counters, gauges, series = (snap["counters"], snap["gauges"],
                                snap["series"])

    # Per-device read/write counts (and the device actually worked).
    assert counters['device_reads{device="server0-ssd"}'] > 0
    assert counters['device_writes{device="server0-ssd"}'] > 0
    # Queue-depth series sampled over time.
    depth_series = series['device_queue_depth{device="server0-ssd"}']
    assert len(depth_series) > 10
    assert any(v > 0 for _, v in depth_series)

    # Per-worker busy fraction in (0, 1].
    busy = {k: v for k, v in gauges.items()
            if k.startswith("worker_busy_fraction")}
    assert len(busy) == cluster.servers[0].config.worker_threads
    assert any(0 < v <= 1 for v in busy.values())

    # Eviction/flush counters mirror the slab manager's accounting.
    m = cluster.servers[0].manager.stats
    assert counters['slab_flushes{server="server0"}'] == m.flushes
    assert counters['slab_flushed_bytes{server="server0"}'] == m.flushed_bytes
    assert counters['ssd_reads{server="server0"}'] == m.ssd_reads
    assert m.flushes > 0

    # NIC bytes by node and link.
    nic_bytes = {k: v for k, v in counters.items()
                 if k.startswith("nic_bytes_sent")}
    assert nic_bytes and sum(nic_bytes.values()) > 0
    total_nic = sum(n.bytes_sent for node in cluster.fabric.nodes.values()
                    for n in node._nics.values())
    assert sum(nic_bytes.values()) == total_nic

    # Client window-occupancy series.
    for client in cluster.clients:
        win = series[f'client_window{{client="{client.name}"}}']
        assert any(v > 0 for _, v in win)

    # Slab-class free-slot gauges exist.
    assert any(k.startswith("slab_free_chunks") for k in gauges)

    # Snapshot is taken at the (post-run) sim time.
    assert snap["time"] > 0


def test_chrome_trace_is_valid_and_covers_all_layers(tmp_path):
    cluster, _ = _run(observe=True, trace=True)
    path = chrome_trace(cluster.obs.tracer, tmp_path / "run.trace.json")
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert events
    pids = {e["pid"] for e in events}
    assert {"sim", "net", "storage", "server", "client"} <= pids
    # Async begin/end pairs balance per id.
    opened = {}
    for ev in events:
        if ev["ph"] == "b":
            opened[ev["id"]] = opened.get(ev["id"], 0) + 1
        elif ev["ph"] == "e":
            opened[ev["id"]] -= 1
    assert all(v == 0 for v in opened.values())
    # Sync events carry non-negative durations; timestamps are µs.
    for ev in events:
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
        assert ev["ts"] >= 0


def test_counters_mirror_server_adhoc_stats():
    cluster, _ = _run(observe=True, trace=False)
    server = cluster.servers[0]
    snap = cluster.obs.snapshot()
    c = snap["counters"]
    assert c['cmd_set{server="server0"}'] == server.stats.sets
    assert c['cmd_get{server="server0"}'] == server.stats.gets
    assert c['get_hits{server="server0"}'] == server.stats.get_hits
    assert c['get_misses{server="server0"}'] == server.stats.get_misses
    assert (c['device_reads{device="server0-ssd"}']
            == server.device.stats.reads)
    assert (c['device_writes{device="server0-ssd"}']
            == server.device.stats.writes)
