"""Tests for the exporters: Chrome trace, Prometheus text, tables."""

import json

from repro.obs.api import Observability
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    metrics_table,
    prometheus_text,
    series_json,
    write_bundle,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler
from repro.obs.tracer import SpanTracer
from repro.sim import Simulator


def make_tracer_with_events():
    t = {"now": 0.0}
    tracer = SpanTracer(clock=lambda: t["now"])
    s1 = tracer.begin("sync", tid="w0", pid="srv")
    a1 = tracer.begin("async", tid="dev", pid="storage", async_=True)
    t["now"] = 0.001
    s1.end()
    t["now"] = 0.002
    a1.end()
    return tracer


def test_chrome_trace_events_convert_to_microseconds_sorted():
    events = chrome_trace_events(make_tracer_with_events())
    assert [e["ph"] for e in events] == ["X", "b", "e"]
    x = events[0]
    assert x["ts"] == 0.0 and x["dur"] == 1000.0  # µs
    assert events[2]["ts"] == 2000.0


def test_chrome_trace_document_schema(tmp_path):
    tracer = make_tracer_with_events()
    doc = chrome_trace(tracer, metadata={"profile": "x"})
    # JSON Object Format of the trace_event spec.
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["profile"] == "x"
    for ev in doc["traceEvents"]:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(ev)
        if ev["ph"] == "X":
            assert "dur" in ev
        if ev["ph"] in ("b", "e"):
            assert "id" in ev
    # Round-trips through JSON and a file.
    json.loads(json.dumps(doc))
    path = chrome_trace(tracer, tmp_path / "t.json")
    assert json.loads(path.read_text())["traceEvents"] == doc["traceEvents"]


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("ops", server="s0").inc(3)
    reg.counter("ops", server="s1").inc(4)
    g = reg.gauge("depth")
    g.set(2)
    h = reg.histogram("lat", lo=1e-6, hi=1.0, buckets=8)
    h.observe(1e-4)
    h.observe(5.0)  # overflow
    text = prometheus_text(reg)
    lines = text.splitlines()
    # one TYPE line per family, not per labeled instance
    assert lines.count("# TYPE ops counter") == 1
    assert 'ops{server="s0"} 3' in lines
    assert 'ops{server="s1"} 4' in lines
    assert "# TYPE depth gauge" in lines
    assert "depth 2" in lines
    assert "# TYPE lat histogram" in lines
    # cumulative buckets, +Inf includes the overflow observation
    inf_line = next(line for line in lines if 'le="+Inf"' in line)
    assert inf_line.endswith(" 2")
    assert "lat_count 2" in lines
    assert any(line.startswith("lat_sum ") for line in lines)
    # cumulative counts never decrease
    bucket_counts = [int(line.rsplit(" ", 1)[1]) for line in lines
                     if line.startswith("lat_bucket")]
    assert bucket_counts == sorted(bucket_counts)


def test_metrics_table_renders_all_kinds():
    reg = MetricsRegistry()
    reg.counter("ops").inc(5)
    reg.gauge("depth", fn=lambda: 7)
    reg.histogram("lat").observe(2e-5)
    out = metrics_table(reg, title="run")
    assert out.splitlines()[0] == "run"
    assert "ops" in out and "counter" in out
    assert "depth" in out and "gauge" in out
    assert "n=1" in out
    assert "(empty registry)" in metrics_table(MetricsRegistry())


def test_series_json(tmp_path):
    sim = Simulator()
    reg = MetricsRegistry(clock=lambda: sim.now)
    reg.gauge("g", fn=lambda: 1)
    sampler = Sampler(sim, reg, interval=0.001)
    sampler.start()

    def proc():
        yield sim.timeout(0.005)

    sim.spawn(proc())
    sim.run()
    doc = series_json(sampler)
    assert "g" in doc
    assert all(len(pt) == 2 for pt in doc["g"])
    path = series_json(sampler, tmp_path / "s.json")
    assert json.loads(path.read_text()) == json.loads(json.dumps(doc))


def test_write_bundle(tmp_path):
    sim = Simulator()
    obs = Observability(sim, metrics=True, trace=True, sample_interval=0.001)
    sim.tracer = obs.tracer
    obs.registry.counter("ops").inc()

    def proc():
        yield sim.timeout(0.003)

    sim.spawn(proc(), name="p")
    sim.run()
    written = write_bundle(obs, tmp_path, prefix="run")
    names = {p.name for p in written}
    assert names == {"run.trace.json", "run.prom", "run.metrics.txt",
                     "run.series.json"}
    json.loads((tmp_path / "run.trace.json").read_text())


def test_write_bundle_metrics_only(tmp_path):
    obs = Observability(metrics=True, trace=False)
    obs.registry.counter("ops").inc()
    written = write_bundle(obs, tmp_path)
    names = {p.name for p in written}
    assert names == {"run.prom", "run.metrics.txt"}
