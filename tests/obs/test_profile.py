"""Unit tests for the causal profiler: attribution, trees, sketches."""

import json

import pytest

from repro.obs.profile import (
    NULL_PROFILER,
    ProfileReport,
    RequestProfiler,
    STAGES,
    StageSketch,
    attribute,
    build_tree,
    canonical_stage,
    folded_stacks,
    profile_message,
)


# -- canonical stage mapping -------------------------------------------------


def test_canonical_stage_maps_dotted_and_unknown_names():
    assert canonical_stage("ssd") == "ssd"
    assert canonical_stage("ssd.io") == "ssd"
    assert canonical_stage("nic") == "nic"
    assert canonical_stage("replica.nic") is None
    assert canonical_stage("replica.server_queue") is None
    assert canonical_stage("banana") == "other"


# -- flat attribution --------------------------------------------------------


def test_attribute_is_exact_partition():
    spans = [("nic", 0.0, 1.0), ("wire", 1.0, 3.0), ("server_queue", 3.0, 4.0)]
    out = attribute(spans, 0.0, 5.0)
    assert out == {"nic": 1.0, "wire": 2.0, "server_queue": 1.0, "other": 1.0}
    assert sum(out.values()) == pytest.approx(5.0)


def test_attribute_overlap_resolved_by_priority():
    # SSD I/O inside a broader server_cpu span: the more specific stage
    # wins the overlap, the enclosing span keeps the rest.
    spans = [("server_cpu", 0.0, 10.0), ("ssd.io", 2.0, 6.0)]
    out = attribute(spans, 0.0, 10.0)
    assert out["ssd"] == pytest.approx(4.0)
    assert out["server_cpu"] == pytest.approx(6.0)
    assert sum(out.values()) == pytest.approx(10.0)


def test_attribute_clips_to_window_and_excludes_replica():
    spans = [("nic", -1.0, 2.0), ("replica.wire", 2.0, 3.0)]
    out = attribute(spans, 0.0, 4.0)
    assert out["nic"] == pytest.approx(2.0)
    # replica.* excluded from flat attribution -> residual time
    assert out["other"] == pytest.approx(2.0)


def test_attribute_empty_window():
    assert attribute([("nic", 0.0, 1.0)], 1.0, 1.0) == {}


# -- span tree and folded stacks ---------------------------------------------


def test_build_tree_nests_by_containment():
    spans = [
        ("server_queue", 1.0, 2.0),
        ("server_cpu", 2.0, 8.0),
        ("ssd.io", 3.0, 7.0),
    ]
    tree = build_tree(spans, 0.0, 10.0)
    assert tree.name == "request" and tree.duration == pytest.approx(10.0)
    names = [c.name for c in tree.children]
    assert names == ["server_queue", "server_cpu"]
    cpu = tree.children[1]
    assert [c.name for c in cpu.children] == ["ssd.io"]
    assert cpu.self_time() == pytest.approx(2.0)
    assert tree.self_time() == pytest.approx(3.0)


def test_folded_stacks_self_times_sum_to_window():
    spans = [("server_cpu", 2.0, 8.0), ("ssd.io", 3.0, 7.0)]
    stacks = folded_stacks(build_tree(spans, 0.0, 10.0))
    assert stacks["request"] == pytest.approx(4.0)
    assert stacks["request;server_cpu"] == pytest.approx(2.0)
    assert stacks["request;server_cpu;ssd.io"] == pytest.approx(4.0)
    assert sum(stacks.values()) == pytest.approx(10.0)


# -- sketch ------------------------------------------------------------------


def test_stage_sketch_percentiles_and_breakdowns():
    sk = StageSketch()
    for _ in range(95):
        sk.add(100e-6, {"nic": 60e-6, "wire": 40e-6})
    for _ in range(5):
        sk.add(10e-3, {"ssd": 9e-3, "nic": 1e-3})
    assert sk.count == 100
    # p50 bucket bounds the common latency; p99 the tail one.
    assert 90e-6 <= sk.percentile(0.50) < 200e-6
    assert sk.percentile(0.99) >= 10e-3
    mean = sk.mean_breakdown()
    assert mean["ssd"] == pytest.approx(5 * 9e-3 / 100)
    p99 = sk.breakdown_at(0.99)
    assert p99["ssd"] == pytest.approx(9e-3)
    p50 = sk.breakdown_at(0.50)
    assert "ssd" not in p50 and p50["nic"] == pytest.approx(60e-6)
    d = sk.to_dict()
    assert d["count"] == 100
    json.dumps(d)


def test_stage_sketch_empty():
    sk = StageSketch()
    assert sk.percentile(0.5) == 0.0
    assert sk.breakdown_at(0.99) == {}
    assert sk.mean_breakdown() == {}


# -- profiler lifecycle ------------------------------------------------------


class _Result:
    def __init__(self, t_complete=0.0, hit=True):
        self.t_complete = t_complete
        self.hit = hit


def make_profiler(**kw):
    t = {"now": 0.0}
    prof = RequestProfiler(clock=lambda: t["now"], **kw)
    return prof, t


def test_profiler_sampling_every_nth():
    prof, _ = make_profiler(sample_every=3)
    tids = [prof.maybe_start("get") for _ in range(9)]
    assert sum(1 for t in tids if t is not None) == 3
    assert tids[0] is not None and tids[1] is None and tids[3] is not None


def test_profiler_finish_classifies_and_aggregates():
    prof, t = make_profiler(keep_traces=True)
    tid = prof.maybe_start("get")
    prof.record(tid, "nic", 0.0, 10e-6)
    prof.record(tid, "ssd.io", 20e-6, 80e-6)
    t["now"] = 100e-6
    prof.finish(tid, _Result(t_complete=100e-6, hit=True))
    rep = prof.report()
    assert list(rep.classes) == ["get:ssd"]
    sk = rep.classes["get:ssd"]
    assert sk.count == 1
    bd = sk.mean_breakdown()
    assert bd["ssd"] == pytest.approx(60e-6)
    assert sum(bd.values()) == pytest.approx(100e-6)
    assert prof.live == 0
    assert len(prof.traces) == 1
    # RAM-served hit and a miss classify differently.
    tid = prof.maybe_start("get")
    t["now"] = 150e-6
    prof.finish(tid, _Result(t_complete=150e-6, hit=True))
    tid = prof.maybe_start("get")
    t["now"] = 200e-6
    prof.finish(tid, _Result(t_complete=200e-6, hit=False))
    assert set(rep.classes) == {"get:ssd", "get:ram", "get:miss"}


def test_profiler_open_close_is_lifo():
    prof, t = make_profiler()
    tid = prof.maybe_start("get")
    prof.open_stage(tid, "server_queue")  # stale (timed-out attempt)
    t["now"] = 10e-6
    prof.open_stage(tid, "server_queue")  # fresh retry
    t["now"] = 15e-6
    prof.close_stage(tid, "server_queue")
    tr = prof._live[tid]
    assert tr.spans == [("server_queue", 10e-6, 15e-6)]
    assert tr.open == [("server_queue", 0.0)]


def test_profiler_discard_and_unknown_ids_are_safe():
    prof, _ = make_profiler()
    tid = prof.maybe_start("set")
    prof.discard(tid)
    assert prof.live == 0
    # Records/finishes against dead or never-issued ids are no-ops.
    prof.record(tid, "nic", 0.0, 1.0)
    prof.close_stage(999, "server_queue")
    prof.finish(999, _Result())
    assert prof.report().finished == 0


def test_profiler_reset_clears_warmup():
    prof, t = make_profiler()
    tid = prof.maybe_start("get")
    t["now"] = 1e-3
    prof.finish(tid, _Result(t_complete=1e-3))
    prof.reset()
    rep = prof.report()
    assert rep.started == 0 and rep.finished == 0 and not rep.classes


def test_null_profiler_is_inert():
    assert not NULL_PROFILER.enabled
    assert NULL_PROFILER.maybe_start("get") is None
    NULL_PROFILER.record(1, "nic", 0.0, 1.0)
    NULL_PROFILER.finish(1, _Result())
    assert NULL_PROFILER.live == 0
    assert isinstance(NULL_PROFILER.report(), ProfileReport)


# -- message profiling -------------------------------------------------------


class _FakeEvent:
    def __init__(self, processed=False):
        self.callbacks = None if processed else []

    def fire(self):
        cbs, self.callbacks = self.callbacks, None
        for cb in cbs:
            cb(self)


class _FakeMsg:
    def __init__(self, processed=False):
        self.on_wire = _FakeEvent(processed)
        self.delivered = _FakeEvent(processed)


def test_profile_message_records_nic_and_wire():
    prof, t = make_profiler()
    tid = prof.maybe_start("get")
    msg = _FakeMsg()
    profile_message(prof, tid, prof.clock, msg)
    t["now"] = 5e-6
    msg.on_wire.fire()
    t["now"] = 12e-6
    msg.delivered.fire()
    assert prof._live[tid].spans == [("nic", 0.0, 5e-6),
                                     ("wire", 5e-6, 12e-6)]


def test_profile_message_prefix_and_processed_events():
    prof, t = make_profiler()
    tid = prof.maybe_start("get")
    t["now"] = 3e-6
    # Already-processed events (zero-latency path) record immediately
    # as zero-length spans, which the recorder drops.
    profile_message(prof, tid, prof.clock, _FakeMsg(processed=True),
                    prefix="replica.")
    assert prof._live[tid].spans == []


def test_report_table_and_folded_lines_render():
    prof, t = make_profiler()
    tid = prof.maybe_start("get")
    prof.record(tid, "nic", 0.0, 10e-6)
    t["now"] = 40e-6
    prof.finish(tid, _Result(t_complete=40e-6))
    rep = prof.report()
    assert "get:ram" in rep.table()
    assert "stage breakdown (mean):" in rep.breakdown_table()
    assert "stage breakdown (p99):" in rep.breakdown_table(q=0.99)
    lines = rep.folded_lines()
    assert any(line.startswith("get:ram;request") for line in lines)
    assert all(s in STAGES for s in ("nic", "ssd", "other"))
