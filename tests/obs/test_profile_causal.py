"""Causal-soundness property test for the profiler (faulty R=2 run).

Every sampled request — across replication fan-out, a server crash,
timeouts, retries, and failover — must yield:

* a rooted span tree over its ``[t_issue, t_done]`` window, and
* a stage attribution that sums *exactly* to its end-to-end latency
  (the attribution is an exact partition by construction).

And the whole report must be byte-identical between the fast-lane and
legacy simulator paths — profiling may not observe scheduling artifacts.
"""

import json

import pytest

from repro.core.cluster import ClusterSpec, ReplicationConfig
from repro.core.profiles import H_RDMA_OPT_NONB_I
from repro.faults import FaultPlan
from repro.harness.runner import RunConfig
from repro.obs.profile import attribute, build_tree
from repro.sim import Simulator
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec


def _run(fast_lane: bool):
    spec = WorkloadSpec(num_ops=120, num_keys=64, value_length=4 * KB,
                        read_fraction=0.5, distribution="zipf", seed=11)
    cluster_spec = ClusterSpec(
        num_servers=3, num_clients=2,
        server_mem=4 * MB, ssd_limit=16 * MB,
        replication=ReplicationConfig(factor=2, write_mode="sync",
                                      router="ketama"),
        request_timeout=2e-3, eject_duration=5e-3,
        profile=True, profile_keep_traces=True)
    cfg = RunConfig(
        profile=H_RDMA_OPT_NONB_I, workload=spec, cluster=cluster_spec,
        sim=Simulator(fast_lane=fast_lane),
        fault_plan=FaultPlan.parse(["crash:server=1,at=4ms,duration=20ms"]))
    cluster = cfg.build()
    result = cfg.run(cluster=cluster)
    return cluster, result


def test_every_sampled_request_attributes_exactly():
    cluster, result = _run(fast_lane=True)
    profiler = cluster.obs.profiler
    # The run quiesced: no live traces left behind.
    assert profiler.live == 0
    records = profiler.traces
    assert result.profile is not None
    assert result.profile.finished == len(records) > 0
    classes = set()
    for trace_id, cls, t_issue, t_done, spans in records:
        classes.add(cls)
        latency = t_done - t_issue
        assert latency > 0
        breakdown = attribute(spans, t_issue, t_done)
        assert sum(breakdown.values()) == pytest.approx(latency, rel=1e-9)
        tree = build_tree(spans, t_issue, t_done)
        assert tree.name == "request"
        assert tree.t0 == t_issue and tree.t1 == t_done
        # Every span landed inside the window (clipping was a no-op for
        # starts; ends may legitimately extend the window).
        for node in tree.children:
            assert t_issue <= node.t0 <= node.t1 <= t_done
    # The faulty mixed workload exercised both GETs and SETs.
    assert any(c.startswith("get") for c in classes)
    assert any(c.startswith("set") for c in classes)


def test_profile_identical_across_sim_paths():
    _, fast = _run(fast_lane=True)
    _, legacy = _run(fast_lane=False)
    assert (json.dumps(fast.profile.to_dict(), sort_keys=True)
            == json.dumps(legacy.profile.to_dict(), sort_keys=True))
    assert (sorted(fast.profile.folded_lines())
            == sorted(legacy.profile.folded_lines()))


def test_trace_window_matches_recorded_latency():
    """For ordinary completed ops the attribution window equals the
    recorded ``ReqResult`` latency (t_complete - t_issue); windows may
    only exceed it for sync-replica barriers that outlive completion."""
    cluster, result = _run(fast_lane=True)
    by_issue = {}
    for r in result.records:
        by_issue.setdefault(round(r.t_issue, 12), []).append(r)
    matched = 0
    for _tid, _cls, t_issue, t_done, _spans in cluster.obs.profiler.traces:
        recs = by_issue.get(round(t_issue, 12), [])
        for r in recs:
            if r.t_complete <= t_done + 1e-12:
                matched += 1
                break
    assert matched == len(cluster.obs.profiler.traces)
