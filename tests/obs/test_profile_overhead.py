"""Guard tests: profiling off must cost (near) nothing.

Two complementary guarantees:

* the NULL path never even *calls* the profiler — every hot-path call
  site is guarded on ``profiler.enabled`` / ``req.trace_id is not None``,
  proven by making every :class:`_NullProfiler` method raise;
* profiling is pure observation — a profiled run is event-for-event
  identical to an unprofiled one (same records, same times, same
  simulator event count), so turning it on cannot change results and
  turning it off cannot leave residue.
"""

import pytest

from repro.core.cluster import ClusterSpec
from repro.core.profiles import H_RDMA_OPT_NONB_I
from repro.harness.runner import RunConfig
from repro.obs.profile import context as profile_context
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec


def _cfg(**cluster_kw):
    spec = WorkloadSpec(num_ops=150, num_keys=256, value_length=8 * KB,
                        read_fraction=0.5, distribution="zipf", seed=3)
    cluster = ClusterSpec(num_servers=2, num_clients=2,
                          server_mem=8 * MB, ssd_limit=32 * MB,
                          **cluster_kw)
    return RunConfig(profile=H_RDMA_OPT_NONB_I, workload=spec,
                     cluster=cluster)


def _fingerprint(result):
    return [(r.op, r.key_length, r.status, r.t_issue, r.t_complete,
             r.blocked_time, tuple(sorted(r.stages.items())))
            for r in result.records]


def test_null_path_allocates_no_profile_state(monkeypatch):
    """With profiling off, no request ever touches the profiler.

    ``reset``/``report``/``live`` are cold-path admin entry points the
    harness may call once per run; everything a *request* would call is
    booby-trapped.
    """

    def boom(self, *args, **kwargs):
        raise AssertionError("profiler touched on the NULL path")

    for name in ("maybe_start", "record", "open_stage", "close_stage",
                 "finish", "discard"):
        monkeypatch.setattr(profile_context._NullProfiler, name, boom)
    cfg = _cfg()
    cluster = cfg.build()
    result = cfg.run(cluster=cluster)
    assert result.profile is None
    assert len(result.records) == 300
    # No request carried a trace id either.
    assert cluster.obs.profiler.live == 0


def test_profiled_run_is_event_for_event_identical():
    base_cfg = _cfg()
    base_cluster = base_cfg.build()
    base = base_cfg.run(cluster=base_cluster)

    prof_cfg = _cfg(profile=True, profile_sample=1)
    prof_cluster = prof_cfg.build()
    prof = prof_cfg.run(cluster=prof_cluster)

    assert _fingerprint(base) == _fingerprint(prof)
    assert base.span == prof.span
    # Pure observation: not a single extra simulation event.
    assert (base_cluster.sim.events_processed
            == prof_cluster.sim.events_processed)
    # ...and the profiled run actually profiled something.
    assert prof.profile is not None
    assert prof.profile.finished > 0


def test_sampling_profiles_every_nth_request():
    cfg = _cfg(profile=True, profile_sample=10)
    result = cfg.run()
    report = result.profile
    assert report is not None
    issued = 300
    assert report.started == pytest.approx(issued / 10, abs=2)
    assert report.finished == report.started
    assert report.sample_every == 10
