"""The wire ``stats`` command returns the live registry when observed."""

from repro import profiles
from repro.core.cluster import build_cluster
from repro.units import KB, MB


def run_app(cluster, gen_fn):
    sim = cluster.sim
    return sim.run(until=sim.spawn(gen_fn(sim)))


def _collect_stats(observe: bool):
    cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I, server_mem=16 * MB,
                            ssd_limit=64 * MB, observe=observe)
    client = cluster.clients[0]
    out = {}

    def app(sim):
        for i in range(12):
            yield from client.set(f"k{i}".encode(), 4 * KB)
        yield from client.get(b"k0")
        out["stats"] = yield from client.stats()

    run_app(cluster, app)
    return cluster, out["stats"]


def test_stats_include_registry_snapshot_when_observed():
    cluster, stats = _collect_stats(observe=True)
    # Classic ad-hoc keys are still present (back-compat).
    assert stats["cmd_set"] >= 12
    assert stats["cmd_get"] >= 1
    # Fully-labelled registry keys ride along.
    assert stats['cmd_set{server="server0"}'] == stats["cmd_set"]
    assert stats['cmd_get{server="server0"}'] == stats["cmd_get"]
    assert 'workers_busy{server="server0"}' in stats
    # Other servers'/clients' metrics are NOT in this server's reply.
    assert not any("client=" in k for k in stats)


def test_stats_unchanged_when_not_observed():
    _, stats = _collect_stats(observe=False)
    assert stats["cmd_set"] >= 12
    assert not any("{" in k for k in stats)
