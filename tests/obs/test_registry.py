"""Tests for the live metrics registry (counters, gauges, histograms)."""

import math

import pytest

from repro.obs.buckets import bucket_index, log_bounds
from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    render_key,
)


# -- bucket math -----------------------------------------------------------


def test_log_bounds_cover_range_exactly():
    bounds = log_bounds(1e-6, 1.0, 12)
    assert len(bounds) == 12
    assert bounds[-1] == 1.0
    assert bounds == sorted(bounds)
    # log-spaced: successive ratios are constant
    ratios = [b / a for a, b in zip(bounds, bounds[1:-1])]
    for r in ratios[1:]:
        assert r == pytest.approx(ratios[0], rel=1e-6)


def test_log_bounds_degenerate_and_errors():
    assert log_bounds(0.5, 0.5, 8) == [0.5]
    with pytest.raises(ValueError):
        log_bounds(1e-6, 1.0, 0)
    with pytest.raises(ValueError):
        log_bounds(0.0, 1.0, 4)
    with pytest.raises(ValueError):
        log_bounds(2.0, 1.0, 4)


def test_bucket_index_matches_linear_scan():
    bounds = log_bounds(1e-6, 10.0, 24)
    values = [1e-7, 1e-6, 3.3e-5, 0.001, 0.5, 9.999, 10.0]
    for v in values:
        linear = next((i for i, b in enumerate(bounds) if v <= b),
                      len(bounds) - 1)
        assert bucket_index(bounds, v) == linear


def test_bucket_index_clamps_overflow():
    bounds = log_bounds(1e-3, 1.0, 4)
    assert bucket_index(bounds, 99.0) == len(bounds) - 1


# -- keys ------------------------------------------------------------------


def test_render_key_sorts_labels():
    assert render_key("x", {}) == "x"
    assert (render_key("nic_bytes", {"node": "c0", "link": "rdma"})
            == 'nic_bytes{link="rdma",node="c0"}')


# -- counters / gauges -----------------------------------------------------


def test_counter_accumulates():
    reg = MetricsRegistry()
    c = reg.counter("ops", server="s0")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert reg.counter("ops", server="s0") is c  # get-or-create
    assert reg.counter("ops", server="s1") is not c


def test_gauge_set_and_callback():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(7)
    assert g.value() == 7
    backing = {"v": 3}
    g2 = reg.gauge("depth2", fn=lambda: backing["v"])
    assert g2.value() == 3
    backing["v"] = 9
    assert g2.value() == 9


def test_gauge_fn_installed_on_reregistration():
    reg = MetricsRegistry()
    g = reg.gauge("occ")
    assert reg.gauge("occ", fn=lambda: 42) is g
    assert g.value() == 42


def test_kind_clash_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


# -- histograms ------------------------------------------------------------


def test_histogram_counts_mean_minmax():
    h = Histogram("lat", {}, lo=1e-6, hi=1.0, buckets=16)
    for v in (1e-5, 1e-4, 1e-4, 0.1):
        h.observe(v)
    assert h.count == 4
    assert h.total == pytest.approx(1e-5 + 2e-4 + 0.1)
    assert h.mean == pytest.approx(h.total / 4)
    assert h.min == pytest.approx(1e-5)
    assert h.max == pytest.approx(0.1)
    assert sum(h.counts) == 4


def test_histogram_overflow_bucket():
    h = Histogram("lat", {}, lo=1e-3, hi=1.0, buckets=4)
    h.observe(50.0)
    assert h.counts[-1] == 1  # overflow slot
    d = h.to_dict()
    assert d["buckets"][-1][0] == math.inf
    assert d["buckets"][-1][1] == 1


def test_histogram_percentiles_are_monotone_and_bounded():
    h = Histogram("lat", {}, lo=1e-6, hi=1.0, buckets=32)
    for i in range(1, 101):
        h.observe(i * 1e-4)
    p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
    assert p50 <= p90 <= p99 <= h.max
    assert p50 == pytest.approx(5e-3, rel=0.35)  # bucket-resolution answer
    assert h.percentile(100) <= h.max
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_empty():
    h = Histogram("lat", {})
    assert h.mean == 0.0
    assert h.percentile(99) == 0.0
    assert h.to_dict()["min"] == 0.0


# -- registry reads --------------------------------------------------------


def test_snapshot_and_flatten_are_sorted_and_typed():
    t = {"now": 0.25}
    reg = MetricsRegistry(clock=lambda: t["now"])
    reg.counter("b_ops", c="z").inc(2)
    reg.counter("a_ops", c="a").inc(1)
    reg.gauge("depth", fn=lambda: 4)
    reg.histogram("lat").observe(1e-4)
    snap = reg.snapshot()
    assert snap["time"] == 0.25
    assert list(snap["counters"]) == ['a_ops{c="a"}', 'b_ops{c="z"}']
    assert snap["gauges"]["depth"] == 4
    assert snap["histograms"]["lat"]["count"] == 1
    flat = reg.flatten()
    assert flat['a_ops{c="a"}'] == 1
    assert flat["depth"] == 4
    assert "lat" not in flat  # histograms are not flattened


def test_snapshot_match_filter():
    reg = MetricsRegistry()
    reg.counter("ops", server="s0").inc()
    reg.counter("ops", server="s1").inc()
    snap = reg.snapshot(match=lambda m: 's0' in m.key)
    assert list(snap["counters"]) == ['ops{server="s0"}']


# -- null registry ---------------------------------------------------------


def test_null_registry_is_inert_and_shared():
    c1 = NULL_REGISTRY.counter("anything", a="b")
    c2 = NULL_REGISTRY.counter("other")
    assert c1 is c2
    c1.inc(100)
    assert c1.value == 0.0
    g = NULL_REGISTRY.gauge("g", fn=lambda: 5)
    assert g.value() == 0.0
    h = NULL_REGISTRY.histogram("h")
    h.observe(1.0)
    assert h.count == 0
    assert NULL_REGISTRY.enabled is False
    assert NULL_REGISTRY.snapshot()["counters"] == {}
    assert NULL_REGISTRY.flatten() == {}
