"""Tests for the sim-time span tracer."""

from repro.obs.tracer import NULL_SPAN, NULL_TRACER, SpanTracer
from repro.sim import Simulator


def make_tracer():
    t = {"now": 0.0}
    tracer = SpanTracer(clock=lambda: t["now"])
    return t, tracer


def test_sync_span_records_complete_event():
    t, tracer = make_tracer()
    span = tracer.begin("work", tid="w0", pid="srv", cat="req", req_id=7)
    t["now"] = 0.5
    span.end()
    assert len(tracer) == 1
    ev = tracer.events[0]
    assert ev["ph"] == "X"
    assert ev["ts"] == 0.0
    assert ev["dur"] == 0.5
    assert ev["name"] == "work" and ev["tid"] == "w0" and ev["pid"] == "srv"
    assert ev["args"] == {"req_id": 7}


def test_span_end_is_idempotent_and_merges_extra_args():
    t, tracer = make_tracer()
    span = tracer.begin("io", bytes=4096)
    t["now"] = 1.0
    span.end(status="ok")
    span.end(status="twice")  # ignored
    assert len(tracer) == 1
    assert tracer.events[0]["args"] == {"bytes": 4096, "status": "ok"}


def test_async_span_emits_begin_end_pair_with_matching_id():
    t, tracer = make_tracer()
    a = tracer.begin("op1", async_=True)
    b = tracer.begin("op2", async_=True)
    t["now"] = 2.0
    b.end()
    a.end()
    phases = [(e["ph"], e["name"]) for e in tracer.events]
    assert phases == [("b", "op2"), ("e", "op2"), ("b", "op1"), ("e", "op1")]
    ids = {e["name"]: e["id"] for e in tracer.events if e["ph"] == "b"}
    assert ids["op1"] != ids["op2"]
    for ev in tracer.events:
        assert ev["id"] == ids[ev["name"]]


def test_context_manager_closes_span():
    t, tracer = make_tracer()
    with tracer.span("region"):
        t["now"] = 0.25
    assert tracer.events[0]["dur"] == 0.25


def test_instant_event():
    t, tracer = make_tracer()
    t["now"] = 3.0
    tracer.instant("marker", detail="x")
    ev = tracer.events[0]
    assert ev["ph"] == "i" and ev["ts"] == 3.0 and ev["args"] == {"detail": "x"}


def test_clear():
    _, tracer = make_tracer()
    tracer.begin("a").end()
    tracer.clear()
    assert len(tracer) == 0


def test_null_tracer_records_nothing():
    span = NULL_TRACER.begin("x", async_=True, anything=1)
    assert span is NULL_SPAN
    span.end(more=2)
    NULL_TRACER.instant("y")
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.events == []
    assert NULL_TRACER.enabled is False


def test_simulator_process_spans_when_tracer_installed():
    sim = Simulator()
    tracer = SpanTracer(clock=lambda: sim.now)
    sim.tracer = tracer

    def proc():
        yield sim.timeout(0.001)

    sim.spawn(proc(), name="p0")
    sim.run()
    names = [e["name"] for e in tracer.events]
    assert names.count("p0") == 2  # async begin + end
    begin = next(e for e in tracer.events if e["ph"] == "b")
    end = next(e for e in tracer.events if e["ph"] == "e")
    assert begin["ts"] == 0.0
    assert end["ts"] == 0.001


def test_simulator_default_tracer_is_null():
    sim = Simulator()
    assert sim.tracer is NULL_TRACER

    def proc():
        yield sim.timeout(0.001)

    sim.spawn(proc())
    sim.run()
    assert len(sim.tracer) == 0
