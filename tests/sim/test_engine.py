"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(1.5)
        log.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert log == [1.5]


def test_timeout_value_passthrough():
    sim = Simulator()
    out = []

    def proc(sim):
        v = yield sim.timeout(0.1, value="payload")
        out.append(v)

    sim.spawn(proc(sim))
    sim.run()
    assert out == ["payload"]


def test_zero_delay_timeout_runs_at_current_time():
    sim = Simulator()
    times = []

    def proc(sim):
        yield sim.timeout(0)
        times.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert times == [0.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_process_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.spawn(proc(sim, 3, "c"))
    sim.spawn(proc(sim, 1, "a"))
    sim.spawn(proc(sim, 2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_tiebreak_at_same_time():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        while True:
            yield sim.timeout(1.0)

    sim.spawn(proc(sim))
    sim.run(until=3.5)
    assert sim.now == 3.5


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return 42

    p = sim.spawn(proc(sim))
    assert sim.run(until=p) == 42
    assert sim.now == 2.0


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    ev = sim.event()  # never triggered
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=ev)


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim):
        got.append((yield ev))

    def firer(sim):
        yield sim.timeout(1.0)
        ev.succeed("done")

    sim.spawn(waiter(sim))
    sim.spawn(firer(sim))
    sim.run()
    assert got == ["done"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_throws_into_waiter():
    sim = Simulator()
    seen = []

    def waiter(sim, ev):
        try:
            yield ev
        except ValueError as e:
            seen.append(str(e))

    ev = sim.event()
    sim.spawn(waiter(sim, ev))
    ev.fail(ValueError("boom"))
    sim.run()
    assert seen == ["boom"]


def test_unhandled_failure_surfaces_from_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        sim.run()


def test_process_exception_propagates_to_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise KeyError("dead process")

    sim.spawn(bad(sim))
    with pytest.raises(KeyError):
        sim.run()


def test_process_exception_catchable_by_parent():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("child died")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except ValueError as e:
            caught.append(str(e))

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["child died"]


def test_yield_on_already_processed_event_resumes_immediately():
    sim = Simulator()
    out = []

    def proc(sim, ev):
        yield sim.timeout(2.0)
        v = yield ev  # triggered at t=0, long processed
        out.append((sim.now, v))

    ev = sim.event()
    ev.succeed("early")
    sim.spawn(proc(sim, ev))
    sim.run()
    assert out == [(2.0, "early")]


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def proc(sim):
        yield 12345  # type: ignore[misc]

    sim.spawn(proc(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_cross_simulator_event_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.event()
    foreign.succeed()
    sim_b.run()

    def proc(sim):
        yield foreign

    sim_a.spawn(proc(sim_a))
    with pytest.raises(SimulationError):
        sim_a.run()


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        return "result"

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.ok and p.value == "result"


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5)

    p = sim.spawn(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_step_on_empty_schedule_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_nested_spawn_from_process():
    sim = Simulator()
    order = []

    def inner(sim):
        yield sim.timeout(1)
        order.append("inner")

    def outer(sim):
        yield sim.spawn(inner(sim))
        order.append("outer")

    sim.spawn(outer(sim))
    sim.run()
    assert order == ["inner", "outer"]


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def proc(sim, i):
        yield sim.timeout(i * 0.001)
        done.append(i)

    for i in range(1000):
        sim.spawn(proc(sim, i))
    sim.run()
    assert len(done) == 1000
    assert done == sorted(done)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_yield_from_subroutine_composition():
    sim = Simulator()
    out = []

    def sub(sim):
        yield sim.timeout(1.0)
        return "sub-done"

    def main(sim):
        v = yield from sub(sim)
        out.append((sim.now, v))

    sim.spawn(main(sim))
    sim.run()
    assert out == [(1.0, "sub-done")]


class TestInterrupt:
    def test_interrupt_wakes_sleeping_process(self):
        from repro.sim import Interrupt

        sim = Simulator()
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100)
                log.append("overslept")
            except Interrupt as i:
                log.append(("interrupted", sim.now, i.cause))

        def waker(sim, victim):
            yield sim.timeout(1)
            victim.interrupt(cause="alarm")

        victim = sim.spawn(sleeper(sim))
        sim.spawn(waker(sim, victim))
        sim.run()
        assert log == [("interrupted", 1.0, "alarm")]

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(0)

        p = sim.spawn(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()


def test_simulation_is_deterministic():
    def build_and_run():
        sim = Simulator()
        trace = []

        def proc(sim, tag, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                trace.append((sim.now, tag))

        sim.spawn(proc(sim, "x", 0.3))
        sim.spawn(proc(sim, "y", 0.2))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()


def test_unhandled_event_failure_inside_event_error_identity():
    sim = Simulator()
    sentinel = ZeroDivisionError("specific instance")
    ev = sim.event()
    ev.fail(sentinel)
    with pytest.raises(ZeroDivisionError) as exc_info:
        sim.run()
    assert exc_info.value is sentinel


def test_event_repr_is_stable():
    sim = Simulator()
    ev = sim.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    sim.run()
    assert "processed" in repr(ev)
