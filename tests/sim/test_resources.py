"""Tests for Resource and Store primitives."""

import pytest

from repro.sim import Resource, Simulator, SimulationError, Store


class TestResource:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_immediate_grant_under_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        granted = []

        def proc(sim, tag):
            req = res.request()
            yield req
            granted.append((tag, sim.now))

        sim.spawn(proc(sim, "a"))
        sim.spawn(proc(sim, "b"))
        sim.run()
        assert granted == [("a", 0.0), ("b", 0.0)]
        assert res.in_use == 2

    def test_fifo_queueing_and_release(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def proc(sim, tag, hold):
            req = res.request()
            yield req
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            res.release(req)

        sim.spawn(proc(sim, "a", 2.0))
        sim.spawn(proc(sim, "b", 1.0))
        sim.spawn(proc(sim, "c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_release_without_hold_rejected(self):
        sim = Simulator()
        res = Resource(sim)
        req = res.request()
        sim.run()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_queued_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        assert res.queue_length == 1
        res.cancel(second)
        assert res.queue_length == 0
        with pytest.raises(SimulationError):
            res.cancel(first)  # granted, not queued

    def test_acquire_helper(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def proc(sim):
            req = yield from res.acquire()
            log.append(sim.now)
            yield sim.timeout(1)
            res.release(req)

        sim.spawn(proc(sim))
        sim.spawn(proc(sim))
        sim.run()
        assert log == [0.0, 1.0]

    def test_utilization_counters(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        reqs = [res.request() for _ in range(5)]
        assert res.in_use == 2
        assert res.queue_length == 3
        res.release(reqs[0])
        assert res.in_use == 2
        assert res.queue_length == 2


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def producer(sim):
            yield store.put("x")

        def consumer(sim):
            item = yield store.get()
            out.append(item)

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert out == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def consumer(sim):
            item = yield store.get()
            out.append((item, sim.now))

        def producer(sim):
            yield sim.timeout(5)
            yield store.put("late")

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert out == [("late", 5.0)]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def producer(sim):
            for i in range(5):
                yield store.put(i)

        def consumer(sim):
            for _ in range(5):
                out.append((yield store.get()))

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        times = []

        def producer(sim):
            for i in range(2):
                yield store.put(i)
                times.append(sim.now)

        def consumer(sim):
            yield sim.timeout(3)
            yield store.get()

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert times == [0.0, 3.0]

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_filtered_get(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def producer(sim):
            yield store.put(("b", 1))
            yield store.put(("a", 2))

        def consumer(sim):
            item = yield store.get(filter=lambda it: it[0] == "a")
            out.append(item)

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert out == [("a", 2)]
        assert list(store.items) == [("b", 1)]

    def test_len_reflects_buffer(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        sim.run()
        assert len(store) == 2
