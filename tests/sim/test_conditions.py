"""Tests for AllOf/AnyOf composite events."""

import pytest

from repro.sim import Simulator


def test_all_of_waits_for_every_event():
    sim = Simulator()
    out = []

    def proc(sim):
        t1 = sim.timeout(1, value="a")
        t2 = sim.timeout(3, value="b")
        values = yield sim.all_of([t1, t2])
        out.append((sim.now, sorted(values.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert out == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    out = []

    def proc(sim):
        t1 = sim.timeout(1, value="fast")
        t2 = sim.timeout(5, value="slow")
        values = yield sim.any_of([t1, t2])
        out.append((sim.now, list(values.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert out == [(1.0, ["fast"])]


def test_empty_all_of_triggers_immediately():
    sim = Simulator()
    out = []

    def proc(sim):
        v = yield sim.all_of([])
        out.append((sim.now, v))

    sim.spawn(proc(sim))
    sim.run()
    assert out == [(0.0, {})]


def test_empty_any_of_triggers_immediately():
    sim = Simulator()
    out = []

    def proc(sim):
        v = yield sim.any_of([])
        out.append((sim.now, v))

    sim.spawn(proc(sim))
    sim.run()
    assert out == [(0.0, {})]


def test_all_of_with_already_processed_children():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("pre")
    out = []

    def proc(sim):
        yield sim.timeout(1)
        values = yield sim.all_of([ev, sim.timeout(1, value="post")])
        out.append(sorted(values.values()))

    sim.spawn(proc(sim))
    sim.run()
    assert out == [["post", "pre"]]


def test_all_of_fails_if_any_child_fails():
    sim = Simulator()
    caught = []

    def proc(sim):
        good = sim.timeout(1)
        bad = sim.event()
        bad.fail(ValueError("child failed"))
        try:
            yield sim.all_of([good, bad])
        except ValueError as e:
            caught.append(str(e))

    sim.spawn(proc(sim))
    sim.run()
    assert caught == ["child failed"]


def test_all_of_over_processes():
    sim = Simulator()

    def worker(sim, d):
        yield sim.timeout(d)
        return d

    def main(sim):
        procs = [sim.spawn(worker(sim, d)) for d in (3, 1, 2)]
        values = yield sim.all_of(procs)
        return [values[p] for p in procs]

    m = sim.spawn(main(sim))
    sim.run()
    assert m.value == [3, 1, 2]


def test_condition_value_maps_events_to_values():
    sim = Simulator()

    def main(sim):
        t1 = sim.timeout(1, value=10)
        t2 = sim.timeout(2, value=20)
        values = yield sim.all_of([t1, t2])
        assert values[t1] == 10 and values[t2] == 20

    p = sim.spawn(main(sim))
    sim.run()
    assert p.ok


def test_any_of_failure_propagates():
    sim = Simulator()

    def main(sim):
        bad = sim.event()
        bad.fail(RuntimeError("first thing failed"))
        yield sim.any_of([bad, sim.timeout(10)])

    sim.spawn(main(sim))
    with pytest.raises(RuntimeError, match="first thing failed"):
        sim.run()
