"""Tests for the PriorityStore primitive."""

from repro.sim import PriorityStore, Simulator


def test_lowest_priority_first():
    sim = Simulator()
    ps = PriorityStore(sim)
    out = []

    def consumer(sim):
        for _ in range(3):
            out.append((yield ps.get()))

    ps.put("low", priority=2)
    ps.put("high", priority=0)
    ps.put("mid", priority=1)
    sim.spawn(consumer(sim))
    sim.run()
    assert out == ["high", "mid", "low"]


def test_ties_resolve_fifo():
    sim = Simulator()
    ps = PriorityStore(sim)
    out = []

    def consumer(sim):
        for _ in range(4):
            out.append((yield ps.get()))

    for tag in "abcd":
        ps.put(tag, priority=1)
    sim.spawn(consumer(sim))
    sim.run()
    assert out == list("abcd")


def test_getter_blocks_until_put():
    sim = Simulator()
    ps = PriorityStore(sim)
    out = []

    def consumer(sim):
        out.append(((yield ps.get()), sim.now))

    def producer(sim):
        yield sim.timeout(2.0)
        ps.put("late")

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert out == [("late", 2.0)]


def test_later_high_priority_overtakes_buffered_low():
    sim = Simulator()
    ps = PriorityStore(sim)
    out = []

    def consumer(sim):
        yield sim.timeout(1.0)
        for _ in range(2):
            out.append((yield ps.get()))

    ps.put("first-but-low", priority=5)
    ps.put("second-but-high", priority=0)
    sim.spawn(consumer(sim))
    sim.run()
    assert out == ["second-but-high", "first-but-low"]


def test_len_tracks_buffer():
    sim = Simulator()
    ps = PriorityStore(sim)
    ps.put(1)
    ps.put(2)
    assert len(ps) == 2
