"""Edge-case coverage for the engine beyond the core semantics."""

import pytest

from repro.sim import Resource, Simulator, SimulationError, Store


def test_run_until_failed_event_raises():
    sim = Simulator()

    def doomed(sim):
        yield sim.timeout(1)
        raise ValueError("process died")

    p = sim.spawn(doomed(sim))
    with pytest.raises(ValueError, match="process died"):
        sim.run(until=p)


def test_run_until_event_from_other_sim_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        sim_a.run(until=sim_b.event())


def test_run_until_already_processed_event_returns_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("done")
    sim.run()
    assert sim.run(until=ev) == "done"


def test_condition_with_failed_child_defuses_into_condition():
    sim = Simulator()
    bad = sim.event()
    caught = []

    def waiter(sim):
        good = sim.timeout(1)
        try:
            yield sim.all_of([good, bad])
        except RuntimeError as e:
            caught.append(str(e))

    # Attach the waiter first: a failure nobody observes is an error.
    sim.spawn(waiter(sim))
    bad.fail(RuntimeError("pre-failed"))
    sim.run()
    assert caught == ["pre-failed"]


def test_process_catching_interrupt_continues():
    from repro.sim import Interrupt

    sim = Simulator()
    log = []

    def resilient(sim):
        for _ in range(3):
            try:
                yield sim.timeout(10)
                log.append("slept")
            except Interrupt:
                log.append("poked")

    def poker(sim, victim):
        yield sim.timeout(1)
        victim.interrupt()

    v = sim.spawn(resilient(sim))
    sim.spawn(poker(sim, v))
    sim.run()
    assert log == ["poked", "slept", "slept"]


def test_store_filtered_getter_waits_for_matching_item():
    sim = Simulator()
    store = Store(sim)
    got = []

    def picky(sim):
        item = yield store.get(filter=lambda x: x % 2 == 0)
        got.append((item, sim.now))

    def producer(sim):
        yield sim.timeout(1)
        yield store.put(3)  # no match
        yield sim.timeout(1)
        yield store.put(4)  # match

    sim.spawn(picky(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert got == [(4, 2.0)]
    assert list(store.items) == [3]


def test_resource_fifo_fairness_under_churn():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    order = []

    def worker(sim, tag):
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(1)
        res.release(req)

    for tag in range(10):
        sim.spawn(worker(sim, tag))
    sim.run()
    assert order == list(range(10))


def test_event_failure_after_condition_succeeded_is_untangled():
    sim = Simulator()

    def main(sim):
        t1 = sim.timeout(1, value="a")
        t2 = sim.timeout(5, value="b")
        got = yield sim.any_of([t1, t2])
        assert list(got.values()) == ["a"]
        # t2 still fires later; nothing blows up.
        yield t2

    p = sim.spawn(main(sim))
    sim.run()
    assert p.ok


def test_timeout_value_default_none():
    sim = Simulator()

    def proc(sim):
        v = yield sim.timeout(1)
        assert v is None

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.ok
