"""Tests for trace export/import round trips."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.request import OpRecord
from repro.core import trace
from repro.core.metrics import STAGE_KEYS


@pytest.fixture()
def records():
    return [
        OpRecord(op="get", api="iget", key_length=14, value_length=32768,
                 status="HIT", t_issue=0.001, t_complete=0.0012,
                 blocked_time=0.00001,
                 stages={"cache_check_load": 0.0001,
                         "server_response": 0.00002}, server_index=2),
        OpRecord(op="set", api="set", key_length=14, value_length=1024,
                 status="STORED", t_issue=0.002, t_complete=0.0021,
                 blocked_time=0.0001, stages={}, server_index=0),
    ]


def test_csv_roundtrip(tmp_path, records):
    path = trace.write_csv(records, tmp_path / "ops.csv")
    loaded = trace.read_csv(path)
    assert loaded == records


def test_jsonl_roundtrip(tmp_path, records):
    path = trace.write_jsonl(records, tmp_path / "ops.jsonl")
    loaded = trace.read_jsonl(path)
    assert loaded == records


def test_to_dicts_flattens_stages(records):
    d = trace.to_dicts(records)[0]
    assert d["stage_cache_check_load"] == pytest.approx(0.0001)
    assert d["stage_miss_penalty"] == 0.0
    assert d["op"] == "get"


def test_csv_from_live_run(tmp_path):
    from repro import build_cluster, profiles
    from repro.units import KB, MB

    cluster = build_cluster(profiles.RDMA_MEM, server_mem=8 * MB)
    client = cluster.clients[0]

    def app(sim):
        yield from client.set(b"k", 4 * KB)
        yield from client.get(b"k")

    cluster.sim.run(until=cluster.sim.spawn(app(cluster.sim)))
    path = trace.write_csv(client.records, tmp_path / "live.csv")
    loaded = trace.read_csv(path)
    assert len(loaded) == 2
    assert loaded[0].op == "set" and loaded[1].status == "HIT"
    # Metrics work identically on loaded records.
    from repro.core import metrics
    assert metrics.mean_latency(loaded) == pytest.approx(
        metrics.mean_latency(client.records))


def test_ascii_bars_renders():
    from repro.harness.report import ascii_bars
    from repro.units import US

    out = ascii_bars({"RDMA-Mem": 15 * US, "H-RDMA-Def": 165 * US},
                     title="nofit latency")
    assert "nofit latency" in out
    assert out.count("#") > 10
    lines = out.splitlines()
    assert len(lines) == 3
    # The larger value gets the longer bar.
    assert lines[2].count("#") > lines[1].count("#")


def test_ascii_bars_empty():
    from repro.harness.report import ascii_bars

    assert "(no data)" in ascii_bars({}, title="x")


def test_base_fields_cover_every_stored_oprecord_field():
    """_BASE_FIELDS must stay in sync with the OpRecord dataclass."""
    stored = {f.name for f in dataclasses.fields(OpRecord)}
    assert set(trace._BASE_FIELDS) | {"stages"} == stored


def test_derived_fields_are_written_and_survive_roundtrip(tmp_path, records):
    d = trace.to_dicts(records)[0]
    assert d["latency"] == pytest.approx(records[0].latency)
    assert d["overlap_fraction"] == pytest.approx(
        records[0].overlap_fraction)
    for reader, writer, name in (
            (trace.read_csv, trace.write_csv, "ops.csv"),
            (trace.read_jsonl, trace.write_jsonl, "ops.jsonl")):
        loaded = reader(writer(records, tmp_path / name))
        for orig, back in zip(records, loaded):
            assert back.latency == pytest.approx(orig.latency)
            assert back.overlap_fraction == pytest.approx(
                orig.overlap_fraction)


@st.composite
def op_records(draw):
    t_issue = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
    dt = draw(st.floats(min_value=0, max_value=1, allow_nan=False))
    n_stages = draw(st.integers(min_value=0, max_value=len(STAGE_KEYS)))
    stages = {k: draw(st.floats(min_value=1e-9, max_value=1e-2,
                                allow_nan=False))
              for k in STAGE_KEYS[:n_stages]}
    return OpRecord(
        op=draw(st.sampled_from(["get", "set", "delete"])),
        api=draw(st.sampled_from(["get", "set", "iget", "iset", "bget",
                                  "bset"])),
        key_length=draw(st.integers(min_value=1, max_value=250)),
        value_length=draw(st.integers(min_value=0, max_value=1 << 20)),
        status=draw(st.sampled_from(["HIT", "MISS", "STORED"])),
        t_issue=t_issue, t_complete=t_issue + dt,
        blocked_time=draw(st.floats(min_value=0, max_value=1,
                                    allow_nan=False)),
        stages=stages,
        server_index=draw(st.integers(min_value=-1, max_value=31)))


@settings(max_examples=60, deadline=None)
@given(st.lists(op_records(), max_size=8))
def test_roundtrip_property(tmp_path_factory, recs):
    tmp_path = tmp_path_factory.mktemp("trace")
    assert trace.read_csv(trace.write_csv(recs, tmp_path / "r.csv")) == recs
    assert trace.read_jsonl(
        trace.write_jsonl(recs, tmp_path / "r.jsonl")) == recs
