"""Tests for trace export/import round trips."""

import pytest

from repro.client.request import OpRecord
from repro.core import trace


@pytest.fixture()
def records():
    return [
        OpRecord(op="get", api="iget", key_length=14, value_length=32768,
                 status="HIT", t_issue=0.001, t_complete=0.0012,
                 blocked_time=0.00001,
                 stages={"cache_check_load": 0.0001,
                         "server_response": 0.00002}, server_index=2),
        OpRecord(op="set", api="set", key_length=14, value_length=1024,
                 status="STORED", t_issue=0.002, t_complete=0.0021,
                 blocked_time=0.0001, stages={}, server_index=0),
    ]


def test_csv_roundtrip(tmp_path, records):
    path = trace.write_csv(records, tmp_path / "ops.csv")
    loaded = trace.read_csv(path)
    assert loaded == records


def test_jsonl_roundtrip(tmp_path, records):
    path = trace.write_jsonl(records, tmp_path / "ops.jsonl")
    loaded = trace.read_jsonl(path)
    assert loaded == records


def test_to_dicts_flattens_stages(records):
    d = trace.to_dicts(records)[0]
    assert d["stage_cache_check_load"] == pytest.approx(0.0001)
    assert d["stage_miss_penalty"] == 0.0
    assert d["op"] == "get"


def test_csv_from_live_run(tmp_path):
    from repro import build_cluster, profiles
    from repro.units import KB, MB

    cluster = build_cluster(profiles.RDMA_MEM, server_mem=8 * MB)
    client = cluster.clients[0]

    def app(sim):
        yield from client.set(b"k", 4 * KB)
        yield from client.get(b"k")

    cluster.sim.run(until=cluster.sim.spawn(app(cluster.sim)))
    path = trace.write_csv(client.records, tmp_path / "live.csv")
    loaded = trace.read_csv(path)
    assert len(loaded) == 2
    assert loaded[0].op == "set" and loaded[1].status == "HIT"
    # Metrics work identically on loaded records.
    from repro.core import metrics
    assert metrics.mean_latency(loaded) == pytest.approx(
        metrics.mean_latency(client.records))


def test_ascii_bars_renders():
    from repro.harness.report import ascii_bars
    from repro.units import US

    out = ascii_bars({"RDMA-Mem": 15 * US, "H-RDMA-Def": 165 * US},
                     title="nofit latency")
    assert "nofit latency" in out
    assert out.count("#") > 10
    lines = out.splitlines()
    assert len(lines) == 3
    # The larger value gets the longer bar.
    assert lines[2].count("#") > lines[1].count("#")


def test_ascii_bars_empty():
    from repro.harness.report import ascii_bars

    assert "(no data)" in ascii_bars({}, title="x")
