"""Tests for histogram/CDF metrics and wait timeouts."""

import pytest

from repro.client.request import OpRecord
from repro.core import metrics


def rec(latency):
    return OpRecord(op="get", api="get", key_length=8, value_length=10,
                    status="HIT", t_issue=0.0, t_complete=latency,
                    blocked_time=latency)


class TestHistogram:
    def test_counts_sum_to_records(self):
        recs = [rec(10 ** -i) for i in range(1, 6)] * 3
        hist = metrics.latency_histogram(recs, buckets=8)
        assert sum(c for _, c in hist) == len(recs)

    def test_bounds_monotone(self):
        recs = [rec(x * 1e-6) for x in (1, 5, 20, 100, 900)]
        hist = metrics.latency_histogram(recs)
        bounds = [b for b, _ in hist]
        assert bounds == sorted(bounds)
        assert bounds[-1] == pytest.approx(900e-6)

    def test_single_value(self):
        hist = metrics.latency_histogram([rec(1e-3)] * 5)
        assert hist == [(1e-3, 5)]

    def test_empty_and_validation(self):
        assert metrics.latency_histogram([]) == []
        with pytest.raises(ValueError):
            metrics.latency_histogram([rec(1)], buckets=0)


class TestCdf:
    def test_percentile_points(self):
        recs = [rec((i + 1) * 1e-6) for i in range(1000)]
        cdf = metrics.latency_cdf(recs)
        assert cdf[50] == pytest.approx(500e-6, rel=0.01)
        assert cdf[99] == pytest.approx(990e-6, rel=0.01)
        assert cdf[99.9] <= 1000e-6


class TestWaitTimeout:
    def test_wait_times_out_then_completes_later(self):
        from repro import build_cluster, profiles
        from repro.units import KB, MB, US

        cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I,
                                server_mem=16 * MB, ssd_limit=64 * MB)
        client = cluster.clients[0]
        out = {}

        def app(sim):
            req = yield from client.iset(b"key", 256 * KB)
            # 1 µs is far too short for a 256 KB transfer.
            r = yield from client.wait(req, timeout=1 * US)
            out["after_timeout"] = r.done
            yield from client.wait(req)  # no timeout: completes
            out["final"] = req.status

        cluster.sim.run(until=cluster.sim.spawn(app(cluster.sim)))
        assert out["after_timeout"] is False
        assert out["final"] == "STORED"

    def test_wait_with_ample_timeout_behaves_normally(self):
        from repro import build_cluster, profiles
        from repro.units import KB, MB

        cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I,
                                server_mem=16 * MB, ssd_limit=64 * MB)
        client = cluster.clients[0]

        def app(sim):
            req = yield from client.iset(b"key", 4 * KB)
            r = yield from client.wait(req, timeout=1.0)
            assert r.done and r.status == "STORED"

        cluster.sim.run(until=cluster.sim.spawn(app(cluster.sim)))
        assert len(client.records) == 1
