"""Online shard migration: ClusterAdmin add/remove/rebalance under a
live simulator, data placement after cutover, the handoff-window
counters, and the autoscaler loop.

These tests drive the transfer engine directly (no workload harness):
preload a keyspace, mutate the topology, run the simulator until the
migration settles, then check every key sits where the *new* view
routes it.
"""

import pytest

from repro.core.cluster import ClusterSpec, ReplicationConfig, build_cluster
from repro.core.profiles import H_RDMA_OPT_NONB_I
from repro.core.topology import AutoscalePolicy, TopologyConfig
from repro.units import MB

KEYS = [b"key:%03d" % i for i in range(60)]


def make_cluster(n, *, router="ketama", handoff="forward", observe=True,
                 autoscale=None, replication=1, **topo_kw):
    spec = ClusterSpec(
        topology=TopologyConfig(initial_servers=n, handoff=handoff,
                                autoscale=autoscale, **topo_kw),
        num_clients=1, server_mem=16 * MB, ssd_limit=64 * MB,
        replication=ReplicationConfig(factor=replication, router=router),
        observe=observe)
    return build_cluster(H_RDMA_OPT_NONB_I, spec=spec)


def owner_of(cluster, key):
    return cluster._client_router().server_for(
        key, cluster.topology_alive())


def settle(cluster, max_steps=2000):
    sim = cluster.sim
    for _ in range(max_steps):
        if cluster.migration is None:
            return
        sim.run(until=sim.timeout(1e-3))
    raise AssertionError("migration did not settle")


def counter_total(cluster, name):
    return int(sum(c.value for c in cluster.obs.registry.counters(
        lambda m: m.name == name)))


def assert_placement(cluster, keys):
    for key in keys:
        owner = owner_of(cluster, key)
        assert key in cluster.servers[owner].manager.table, \
            f"{key!r} missing from its owner server{owner}"


class TestAddServer:
    @pytest.mark.parametrize("router", ["ketama", "modulo"])
    def test_add_migrates_items_to_new_owner(self, router):
        cluster = make_cluster(2, router=router)
        cluster.preload([(k, 512) for k in KEYS])
        cluster.admin.add_server()
        settle(cluster)
        assert len(cluster.servers) == 3
        assert cluster.view_epoch == 1
        assert cluster.serving_indices() == [0, 1, 2]
        assert_placement(cluster, KEYS)
        assert counter_total(cluster, "migration_items") > 0
        # The new server actually owns (and holds) part of the keyspace.
        assert len(cluster.servers[2].manager.table) > 0

    def test_ownership_gauge_sums_to_one(self):
        cluster = make_cluster(2)
        cluster.admin.add_server()
        settle(cluster)
        shares = [cluster.ownership_share(i)
                  for i in range(len(cluster.servers))]
        assert sum(shares) == pytest.approx(1.0)
        assert all(s > 0 for s in shares)


class TestRemoveServer:
    def test_remove_with_drain_keeps_every_key(self):
        cluster = make_cluster(3)
        cluster.preload([(k, 512) for k in KEYS])
        held_before = sum(len(s.manager.table) for s in cluster.servers)
        cluster.admin.remove_server(2)
        settle(cluster)
        assert cluster.serving_indices() == [0, 1]
        assert cluster.view_epoch == 1
        assert_placement(cluster, KEYS)
        # The drained donor dropped everything it no longer owns.
        assert len(cluster.servers[2].manager.table) == 0
        held_after = sum(len(s.manager.table) for s in cluster.servers)
        assert held_after == held_before

    def test_remove_by_name_and_bad_targets(self):
        cluster = make_cluster(3)
        cluster.admin.remove_server("server2")
        settle(cluster)
        assert cluster.serving_indices() == [0, 1]
        with pytest.raises(ValueError):
            cluster.admin.remove_server(2)  # already removed
        with pytest.raises(ValueError):
            cluster.admin.remove_server("serverX")
        with pytest.raises(ValueError):
            cluster.admin.remove_server(17)

    def test_cannot_remove_last_server(self):
        cluster = make_cluster(2)
        cluster.admin.remove_server(1)
        settle(cluster)
        with pytest.raises(ValueError):
            cluster.admin.remove_server(0)

    def test_remove_without_drain_drops_the_shard(self):
        cluster = make_cluster(2)
        cluster.preload([(k, 512) for k in KEYS])
        moved = [k for k in KEYS if owner_of(cluster, k) == 1]
        assert moved  # the test needs server1 to own something
        cluster.admin.remove_server(1, drain=False)
        settle(cluster)
        # No copy ran: the removed shard's items are simply gone
        # (misses repopulate from the backend, as documented).
        for key in moved:
            owner = owner_of(cluster, key)
            assert key not in cluster.servers[owner].manager.table

    def test_readd_reincludes_and_wipes_the_excluded_server(self):
        cluster = make_cluster(2)
        cluster.preload([(k, 512) for k in KEYS])
        cluster.admin.remove_server(1)
        settle(cluster)
        cluster.admin.add_server()
        settle(cluster)
        # Re-include, not append: the ring never grew.
        assert len(cluster.servers) == 2
        assert cluster.serving_indices() == [0, 1]
        assert cluster.view_epoch == 2
        assert_placement(cluster, KEYS)


class TestDoubleRead:
    def test_pull_on_miss_serves_during_slow_copy(self):
        # Crawl the copy (1 item / 2ms) so reads hit the window.
        cluster = make_cluster(2, handoff="double-read",
                               migration_batch=1, migration_interval=2e-3)
        cluster.preload([(k, 512) for k in KEYS])
        sim = cluster.sim
        client = cluster.clients[0]
        statuses = []

        def reader():
            yield sim.timeout(1e-3)  # let the view publish reach us
            for key in KEYS:
                req = yield from client.get(key)
                statuses.append(req.status)

        sim.spawn(reader(), name="reader")
        cluster.admin.add_server()
        sim.run(until=sim.timeout(50e-3))
        assert statuses and all(s == "HIT" for s in statuses)
        assert counter_total(cluster, "double_reads") > 0
        settle(cluster)
        assert_placement(cluster, KEYS)


class TestRebalance:
    def test_rebalance_repairs_misplaced_items(self):
        cluster = make_cluster(3)
        cluster.preload([(k, 512) for k in KEYS])
        # Misplace by hand: shove every key onto server0.
        for key in KEYS:
            cluster.servers[0].manager.preload(key, 512)
        cluster.admin.rebalance()
        settle(cluster)
        assert_placement(cluster, KEYS)
        for key in KEYS:
            owner = owner_of(cluster, key)
            if owner != 0:
                assert key not in cluster.servers[0].manager.table


class TestGuards:
    def test_elastic_requires_replication_factor_one(self):
        cluster = make_cluster(3, replication=2)
        with pytest.raises(ValueError):
            cluster.admin.add_server()
        with pytest.raises(ValueError):
            cluster.admin.remove_server(2)

    def test_one_migration_at_a_time(self):
        cluster = make_cluster(2)
        cluster.admin.add_server()
        with pytest.raises(RuntimeError):
            cluster.admin.add_server()
        settle(cluster)
        cluster.admin.add_server()  # fine once settled
        settle(cluster)


class TestViewEpochRespected:
    """Regression (bugfix sweep): preload and resync must route by the
    *current* view, never the founding topology."""

    def test_preload_skips_excluded_servers(self):
        cluster = make_cluster(3)
        cluster.admin.remove_server(2)
        settle(cluster)
        cluster.preload([(k, 512) for k in KEYS])
        assert len(cluster.servers[2].manager.table) == 0
        assert_placement(cluster, KEYS)

    def test_resync_of_excluded_server_is_a_no_op(self):
        cluster = make_cluster(3)
        cluster.preload([(k, 512) for k in KEYS])
        cluster.admin.remove_server(2)
        settle(cluster)
        assert cluster.resync_server(2) == 0
        assert len(cluster.servers[2].manager.table) == 0


class TestAutoscaler:
    def test_grows_to_max_when_above_watermark(self):
        # high_watermark 0.0 <= any sampled depth: every eligible tick
        # grows the fleet until max_servers.
        policy = AutoscalePolicy(high_watermark=0.0, low_watermark=-1.0,
                                 min_servers=2, max_servers=4,
                                 interval=1e-3, cooldown=2e-3)
        cluster = make_cluster(2, autoscale=policy)
        sim = cluster.sim
        sim.run(until=sim.timeout(80e-3))
        settle(cluster)
        assert len(cluster.serving_indices()) == 4
        assert cluster.view_epoch >= 2

    def test_shrinks_to_min_when_idle(self):
        policy = AutoscalePolicy(high_watermark=1e9, low_watermark=1e9,
                                 min_servers=2, max_servers=4,
                                 interval=1e-3, cooldown=2e-3)
        cluster = make_cluster(4, autoscale=policy)
        sim = cluster.sim
        sim.run(until=sim.timeout(80e-3))
        settle(cluster)
        assert len(cluster.serving_indices()) == 2
