"""Tests for metric aggregation."""

import pytest

from repro.client.request import OpRecord
from repro.core import metrics


def rec(op="get", status="HIT", t0=0.0, t1=1.0, blocked=1.0, stages=None,
        api="get"):
    return OpRecord(op=op, api=api, key_length=10, value_length=100,
                    status=status, t_issue=t0, t_complete=t1,
                    blocked_time=blocked, stages=stages or {})


class TestLatency:
    def test_mean(self):
        rs = [rec(t0=0, t1=1), rec(t0=0, t1=3)]
        assert metrics.mean_latency(rs) == pytest.approx(2.0)
        assert metrics.mean_latency([]) == 0.0

    def test_percentile(self):
        rs = [rec(t0=0, t1=i + 1) for i in range(100)]
        assert metrics.percentile_latency(rs, 50) == pytest.approx(50.0)
        assert metrics.percentile_latency(rs, 99) == pytest.approx(99.0)
        assert metrics.percentile_latency(rs, 100) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            metrics.percentile_latency(rs, 101)

    def test_effective_latency_is_span_over_count(self):
        rs = [rec(t0=0, t1=10), rec(t0=1, t1=2), rec(t0=2, t1=4)]
        assert metrics.effective_latency(rs) == pytest.approx(10 / 3)

    def test_effective_equals_mean_for_back_to_back_blocking(self):
        rs = [rec(t0=0, t1=1), rec(t0=1, t1=2), rec(t0=2, t1=3)]
        assert metrics.effective_latency(rs) == pytest.approx(
            metrics.mean_latency(rs))


class TestOverlap:
    def test_fully_blocked_is_zero(self):
        rs = [rec(blocked=1.0)]
        assert metrics.overlap_percent(rs) == pytest.approx(0.0)

    def test_never_blocked_is_hundred(self):
        rs = [rec(blocked=0.0)]
        assert metrics.overlap_percent(rs) == pytest.approx(100.0)

    def test_mixed(self):
        rs = [rec(blocked=0.25)]
        assert metrics.overlap_percent(rs) == pytest.approx(75.0)


class TestThroughput:
    def test_ops_over_span(self):
        rs = [rec(t0=0, t1=1), rec(t0=0.5, t1=2)]
        assert metrics.throughput(rs) == pytest.approx(1.0)

    def test_empty(self):
        assert metrics.throughput([]) == 0.0


class TestBreakdown:
    def test_stage_averages(self):
        rs = [
            rec(stages={"slab_alloc": 0.2, "server_response": 0.1},
                blocked=1.0),
            rec(stages={"slab_alloc": 0.4, "server_response": 0.1},
                blocked=1.0),
        ]
        bd = metrics.stage_breakdown(rs)
        assert bd["slab_alloc"] == pytest.approx(0.3)
        assert bd["server_response"] == pytest.approx(0.1)
        # residual: blocked (1.0) minus attributed (0.3 + 0.1 avg)
        assert bd["client_wait"] == pytest.approx(0.6)

    def test_all_keys_present(self):
        bd = metrics.stage_breakdown([])
        assert set(bd) == set(metrics.STAGE_KEYS)

    def test_client_wait_clamped_nonnegative(self):
        rs = [rec(stages={"slab_alloc": 5.0}, blocked=0.1)]
        assert metrics.stage_breakdown(rs)["client_wait"] == 0.0


class TestMissRateAndFilters:
    def test_miss_rate(self):
        rs = [rec(status="HIT"), rec(status="MISS"),
              rec(op="set", status="STORED", api="set")]
        assert metrics.miss_rate(rs) == pytest.approx(0.5)

    def test_miss_rate_no_gets(self):
        assert metrics.miss_rate([rec(op="set", status="STORED")]) == 0.0

    def test_filters(self):
        rs = [rec(op="get"), rec(op="set", status="STORED", api="set")]
        assert len(metrics.filter_records(rs, op="get")) == 1
        assert len(metrics.filter_records(rs, status="HIT")) == 1

    def test_summarize_keys(self):
        s = metrics.summarize([rec()])
        for key in ("ops", "mean_latency", "effective_latency",
                    "p99_latency", "throughput", "overlap_pct",
                    "miss_rate", "mean_blocked"):
            assert key in s
