"""Router invariants under degraded membership views.

The replication design leans on one property: for any alive set the
membership machinery can produce (ejection, committed views, epoch
bumps on partition-heal), the first entry of ``replicas_for`` IS the
``server_for`` primary. Reads that fail over walk the same preference
order writes fanned out on, on both distribution strategies.
"""

import itertools

import pytest

from repro.client.hashing import make_router

KEYS = [b"key:%010d" % i for i in range(128)]


@pytest.mark.parametrize("name", ["modulo", "ketama"])
class TestPrimaryReplicaAgreement:
    def test_full_membership(self, name):
        router = make_router(name, 4)
        for key in KEYS:
            assert router.replicas_for(key, 2)[0] == router.server_for(key)

    def test_every_alive_subset(self, name):
        router = make_router(name, 4)
        for size in (1, 2, 3):
            for alive in itertools.combinations(range(4), size):
                alive = set(alive)
                n = min(2, len(alive))
                for key in KEYS[:32]:
                    assert (router.replicas_for(key, n, alive)[0]
                            == router.server_for(key, alive))

    def test_replicas_are_distinct_and_alive(self, name):
        router = make_router(name, 5)
        alive = {0, 2, 4}
        for key in KEYS[:32]:
            replicas = router.replicas_for(key, 3, alive)
            assert len(set(replicas)) == len(replicas) == 3
            assert set(replicas) <= alive
