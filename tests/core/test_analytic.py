"""Validate the simulator against the closed-form latency model.

Exact agreement (1e-9 relative) pins the cost model of the entire
uncontended fast path — client API, engine, NIC, wire, worker, slab,
response — against an independent analytic derivation.
"""

import pytest

from repro import build_cluster, profiles
from repro.core.analytic import (
    IPOIB_PATH,
    RDMA_PATH,
    predict_get_latency,
    predict_set_latency,
)
from repro.units import KB, MB


def measure(profile, value_length, key=b"analytic-key"):
    cluster = build_cluster(profile, server_mem=64 * MB)
    client = cluster.clients[0]
    sim = cluster.sim
    out = {}

    def app(sim):
        r = yield from client.set(key, value_length)
        out["set"] = r.latency
        g = yield from client.get(key)
        out["get"] = g.latency

    sim.run(until=sim.spawn(app(sim)))
    return out


@pytest.mark.parametrize("value_length", [512, 4 * KB, 32 * KB, 256 * KB])
def test_rdma_set_matches_closed_form(value_length):
    out = measure(profiles.RDMA_MEM, value_length)
    predicted = predict_set_latency(value_length, len(b"analytic-key"),
                                    RDMA_PATH)
    assert out["set"] == pytest.approx(predicted, rel=1e-9)


@pytest.mark.parametrize("value_length", [512, 4 * KB, 32 * KB, 256 * KB])
def test_rdma_get_matches_closed_form(value_length):
    out = measure(profiles.RDMA_MEM, value_length)
    predicted = predict_get_latency(value_length, len(b"analytic-key"),
                                    RDMA_PATH)
    assert out["get"] == pytest.approx(predicted, rel=1e-9)


@pytest.mark.parametrize("value_length", [512, 32 * KB])
def test_ipoib_set_matches_closed_form(value_length):
    out = measure(profiles.IPOIB_MEM, value_length)
    predicted = predict_set_latency(value_length, len(b"analytic-key"),
                                    IPOIB_PATH)
    assert out["set"] == pytest.approx(predicted, rel=1e-9)


@pytest.mark.parametrize("value_length", [512, 32 * KB])
def test_ipoib_get_matches_closed_form(value_length):
    out = measure(profiles.IPOIB_MEM, value_length)
    predicted = predict_get_latency(value_length, len(b"analytic-key"),
                                    IPOIB_PATH)
    assert out["get"] == pytest.approx(predicted, rel=1e-9)


def test_hybrid_fast_path_equals_inmemory():
    """With everything in RAM, the hybrid design's fast path is the
    same pipeline — the paper's 'negligible overhead' observation."""
    a = measure(profiles.RDMA_MEM, 32 * KB)
    b = measure(profiles.H_RDMA_DEF, 32 * KB)
    assert a["get"] == pytest.approx(b["get"], rel=1e-9)


def test_prediction_monotone_in_size():
    sizes = [1 * KB, 8 * KB, 64 * KB, 512 * KB]
    preds = [predict_get_latency(s, 10, RDMA_PATH) for s in sizes]
    assert preds == sorted(preds)
