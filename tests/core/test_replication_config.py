"""ReplicationConfig: the typed replication surface and its legacy shims.

The old spelling — ``ClusterSpec(router=..., replication_factor=...,
write_mode=...)`` — must keep working for one release of grace: it
warns, builds the equivalent :class:`ReplicationConfig`, and produces
byte-identical runs. Mixing the two spellings inconsistently is a hard
error, not a guess.
"""

import dataclasses

import pytest

from repro.core.cluster import ClusterSpec, ReplicationConfig, build_cluster
from repro.core.profiles import H_RDMA_OPT_NONB_I, RDMA_MEM
from repro.harness.runner import RunConfig
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec


def fingerprint(result):
    return [(r.op, r.key_length, r.status, r.t_issue, r.t_complete,
             r.blocked_time, tuple(sorted(r.stages.items())))
            for r in result.records]


def small_workload():
    return WorkloadSpec(num_ops=80, num_keys=64, value_length=4 * KB,
                        read_fraction=0.5, seed=3)


class TestShim:
    def test_legacy_kwargs_warn_and_backfill(self):
        with pytest.deprecated_call():
            spec = ClusterSpec(num_servers=3, router="ketama",
                               replication_factor=2, write_mode="async")
        assert spec.replication == ReplicationConfig(
            factor=2, write_mode="async", router="ketama")
        # Legacy attribute access still answers, from the config.
        assert spec.replication_factor == 2
        assert spec.write_mode == "async"
        assert spec.router == "ketama"

    def test_typed_config_does_not_warn(self):
        import warnings
        from repro.core.topology import TopologyConfig
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec = ClusterSpec(
                topology=TopologyConfig(initial_servers=3),
                replication=ReplicationConfig(factor=2, router="ketama"))
        assert spec.replication.factor == 2
        assert spec.num_servers == 3

    def test_conflicting_spellings_raise(self):
        with pytest.raises(TypeError):
            ClusterSpec(replication=ReplicationConfig(factor=2),
                        replication_factor=3)

    def test_consistent_legacy_echo_is_accepted(self):
        # dataclasses.replace() passes the backfilled legacy fields back
        # in; values that agree with the config must not be an error.
        spec = ClusterSpec(num_servers=3, replication=ReplicationConfig(
            factor=2, router="ketama"))
        again = dataclasses.replace(spec, num_clients=2)
        assert again.replication == spec.replication

    def test_legacy_and_typed_runs_are_byte_identical(self):
        def run(spec):
            return RunConfig(profile=H_RDMA_OPT_NONB_I,
                             workload=small_workload(), cluster=spec).run()

        with pytest.deprecated_call():
            legacy_spec = ClusterSpec(
                num_servers=3, server_mem=16 * MB, ssd_limit=64 * MB,
                router="ketama", replication_factor=2, write_mode="sync")
        typed_spec = ClusterSpec(
            num_servers=3, server_mem=16 * MB, ssd_limit=64 * MB,
            replication=ReplicationConfig(factor=2, write_mode="sync",
                                          router="ketama"))
        assert fingerprint(run(legacy_spec)) == fingerprint(run(typed_spec))


class TestValidation:
    def test_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            ReplicationConfig(factor=0)

    def test_write_mode_validated(self):
        with pytest.raises(ValueError):
            ReplicationConfig(factor=2, write_mode="eventual")

    def test_factor_bounded_by_cluster_size(self):
        with pytest.raises(ValueError):
            build_cluster(RDMA_MEM, num_servers=2,
                          replication=ReplicationConfig(factor=3))


class TestRunConfigOverride:
    def test_replication_wins_over_cluster_spec(self):
        spec = ClusterSpec(num_servers=3, server_mem=16 * MB,
                           ssd_limit=64 * MB)
        cfg = RunConfig(profile=H_RDMA_OPT_NONB_I,
                        workload=small_workload(), cluster=spec,
                        replication=ReplicationConfig(factor=2,
                                                      router="ketama"))
        cluster = cfg.build()
        assert cluster.spec.replication.factor == 2
        assert cluster.spec.router == "ketama"

    def test_replication_with_spec_overrides(self):
        cfg = RunConfig(profile=RDMA_MEM, workload=small_workload(),
                        spec_overrides=dict(num_servers=3,
                                            server_mem=8 * MB),
                        replication=ReplicationConfig(factor=2))
        cluster = cfg.build()
        assert len(cluster.servers) == 3
        assert cluster.replication_factor == 2
