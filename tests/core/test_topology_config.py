"""TopologyConfig: the typed topology surface and its legacy shim.

The old spelling — ``ClusterSpec(num_servers=4)`` — must keep working
for one release of grace: it warns, builds the equivalent
:class:`TopologyConfig`, and produces byte-identical runs. Mixing the
two spellings inconsistently is a hard error, not a guess. This mirrors
the :class:`ReplicationConfig` shim contract next door.
"""

import dataclasses
import warnings

import pytest

from repro.core.cluster import ClusterSpec, build_cluster
from repro.core.profiles import H_RDMA_OPT_NONB_I
from repro.core.topology import (AutoscalePolicy, TopologyConfig,
                                 TopologySnapshot)
from repro.harness.runner import RunConfig
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec


def fingerprint(result):
    return [(r.op, r.key_length, r.status, r.t_issue, r.t_complete,
             r.blocked_time, tuple(sorted(r.stages.items())))
            for r in result.records]


def small_workload():
    return WorkloadSpec(num_ops=80, num_keys=64, value_length=4 * KB,
                        read_fraction=0.5, seed=3)


class TestValidation:
    def test_initial_servers_must_be_positive(self):
        with pytest.raises(ValueError):
            TopologyConfig(initial_servers=0)

    def test_handoff_mode_checked(self):
        with pytest.raises(ValueError):
            TopologyConfig(handoff="yolo")
        TopologyConfig(handoff="double-read")  # both modes accepted
        TopologyConfig(handoff="forward")

    def test_migration_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            TopologyConfig(migration_batch=0)

    def test_negative_timings_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig(migration_interval=-1e-6)
        with pytest.raises(ValueError):
            TopologyConfig(drain_delay=-1.0)

    def test_autoscale_watermarks_ordered(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(low_watermark=9.0, high_watermark=1.0)

    def test_autoscale_bounds_ordered(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_servers=4, max_servers=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_servers=0)


class TestShim:
    def test_legacy_num_servers_warns_and_backfills(self):
        with pytest.deprecated_call():
            spec = ClusterSpec(num_servers=4)
        assert spec.topology == TopologyConfig(initial_servers=4)
        # Legacy attribute access still answers, from the config.
        assert spec.num_servers == 4

    def test_typed_config_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec = ClusterSpec(topology=TopologyConfig(initial_servers=4))
        assert spec.num_servers == 4

    def test_default_spec_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec = ClusterSpec()
        assert spec.topology.initial_servers == 1

    def test_conflicting_spellings_raise(self):
        with pytest.raises(TypeError):
            ClusterSpec(num_servers=3,
                        topology=TopologyConfig(initial_servers=4))

    def test_consistent_legacy_echo_is_accepted(self):
        # dataclasses.replace() passes the backfilled legacy field back
        # in; a value that agrees with the config must not be an error.
        spec = ClusterSpec(topology=TopologyConfig(initial_servers=3))
        again = dataclasses.replace(spec, num_clients=2)
        assert again.topology == spec.topology
        assert again.num_servers == 3

    def test_legacy_and_typed_runs_are_byte_identical(self):
        def run(spec):
            return RunConfig(profile=H_RDMA_OPT_NONB_I,
                             workload=small_workload(), cluster=spec).run()

        with pytest.deprecated_call():
            legacy_spec = ClusterSpec(num_servers=3, server_mem=16 * MB,
                                      ssd_limit=64 * MB)
        typed_spec = ClusterSpec(
            topology=TopologyConfig(initial_servers=3),
            server_mem=16 * MB, ssd_limit=64 * MB)
        assert fingerprint(run(legacy_spec)) == fingerprint(run(typed_spec))


class TestRunConfigOverride:
    def test_topology_wins_over_cluster_spec(self):
        spec = ClusterSpec(topology=TopologyConfig(initial_servers=2),
                           server_mem=16 * MB, ssd_limit=64 * MB)
        cfg = RunConfig(profile=H_RDMA_OPT_NONB_I,
                        workload=small_workload(), cluster=spec,
                        topology=TopologyConfig(initial_servers=3))
        cluster = cfg.build()
        assert len(cluster.servers) == 3
        assert cluster.topology.initial_servers == 3

    def test_topology_with_spec_overrides(self):
        cfg = RunConfig(profile=H_RDMA_OPT_NONB_I,
                        workload=small_workload(),
                        spec_overrides=dict(server_mem=16 * MB,
                                            ssd_limit=64 * MB),
                        topology=TopologyConfig(initial_servers=3,
                                                handoff="double-read"))
        cluster = cfg.build()
        assert len(cluster.servers) == 3
        assert cluster.topology.handoff == "double-read"


class TestAdminQueries:
    def test_snapshot_shape_and_describe(self):
        cluster = build_cluster(
            H_RDMA_OPT_NONB_I,
            topology=TopologyConfig(initial_servers=3),
            server_mem=16 * MB, ssd_limit=64 * MB)
        snap = cluster.admin.topology()
        assert isinstance(snap, TopologySnapshot)
        assert snap.epoch == 0
        assert snap.ring_size == 3
        assert snap.serving == (0, 1, 2)
        assert snap.excluded == ()
        assert not snap.migrating
        assert sum(snap.ownership) == pytest.approx(1.0)
        text = snap.describe()
        assert "server0" in text and "server2" in text
        assert "serving" in text
