"""Tests for design profiles and the Table-I feature matrix."""

import pytest

from repro.core import profiles


def test_all_six_designs_exist():
    assert len(profiles.ALL_SIX) == 6
    labels = [p.label for p in profiles.ALL_SIX]
    assert labels == ["IPoIB-Mem", "RDMA-Mem", "H-RDMA-Def",
                      "H-RDMA-Opt-Block", "H-RDMA-Opt-NonB-b",
                      "H-RDMA-Opt-NonB-i"]


def test_profiles_registry_keys_match():
    for key, p in profiles.ALL_PROFILES.items():
        assert p.key == key


def test_baselines_are_existing_designs():
    assert all(not p.nonblocking for p in profiles.BASELINES)


def test_transport_flags():
    assert not profiles.IPOIB_MEM.rdma
    assert profiles.RDMA_MEM.rdma
    assert all(p.rdma for p in profiles.ALL_SIX[2:])


def test_hybrid_flags():
    assert not profiles.IPOIB_MEM.hybrid
    assert not profiles.RDMA_MEM.hybrid
    assert all(p.hybrid for p in profiles.ALL_SIX[2:])


def test_io_policy_split():
    assert profiles.H_RDMA_DEF.io_policy == "direct"
    assert profiles.H_RDMA_OPT_BLOCK.io_policy == "adaptive"


def test_invalid_profiles_rejected():
    from repro.core.profiles import DesignProfile

    with pytest.raises(ValueError):
        DesignProfile(key="x", label="x", transport="carrier-pigeon",
                      hybrid=False, io_policy="direct", early_ack=False,
                      nonblocking=False, api="blocking")
    with pytest.raises(ValueError):
        # non-blocking API on a design without the extension
        DesignProfile(key="x", label="x", transport="rdma", hybrid=True,
                      io_policy="direct", early_ack=False,
                      nonblocking=False, api="nonb-i")


def test_feature_matrix_matches_table1():
    rows = profiles.feature_matrix()
    by_name = {r["design"]: r for r in rows}
    assert len(rows) == 5
    # Spot-check the paper's Table I.
    assert not by_name["IPoIB-Mem [3]"]["rdma"]
    assert by_name["RDMA-Mem [10]"]["rdma"]
    assert by_name["FatCache [7]"]["hybrid_ssd"]
    assert not by_name["FatCache [7]"]["rdma"]
    assert by_name["H-RDMA-Def [17]"]["rdma"]
    assert not by_name["H-RDMA-Def [17]"]["nonblocking_api"]
    this = by_name["This Paper"]
    assert all(this[k] for k in
               ("rdma", "hybrid_ssd", "adaptive_io", "nvme",
                "nonblocking_api"))
