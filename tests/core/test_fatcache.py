"""Tests for the FatCache-style baseline (Table I's fourth comparator)."""

import pytest

from repro import build_cluster, profiles
from repro.core.profiles import FATCACHE
from repro.harness.figures import latency_experiment
from repro.units import KB, MB


def test_profile_shape():
    assert not FATCACHE.rdma
    assert FATCACHE.hybrid
    assert not FATCACHE.nonblocking
    assert FATCACHE.io_policy == "direct"
    assert profiles.ALL_PROFILES["fatcache"] is FATCACHE


def test_fatcache_retains_data_like_hybrid():
    cluster = build_cluster(FATCACHE, server_mem=2 * MB, ssd_limit=32 * MB)
    client = cluster.clients[0]

    def app(sim):
        for i in range(100):
            yield from client.set(f"k{i}".encode(), 30 * KB)
        for i in range(100):
            g = yield from client.get(f"k{i}".encode())
            assert g.status == "HIT", i

    cluster.sim.run(until=cluster.sim.spawn(app(cluster.sim)))
    assert cluster.servers[0].manager.stats.flushes > 0


def test_fatcache_slots_between_ipoib_mem_and_rdma_hybrid():
    """Table I's design space, measured: FatCache adds retention to the
    TCP stack (beats IPoIB-Mem under misses) but keeps the TCP penalty
    (loses to the RDMA hybrid)."""
    fat = latency_experiment(FATCACHE, fit=False, scale=64, ops=250)
    ipoib = latency_experiment(profiles.IPOIB_MEM, fit=False, scale=64,
                               ops=250)
    h_def = latency_experiment(profiles.H_RDMA_DEF, fit=False, scale=64,
                               ops=250)
    assert fat["miss_rate"] == 0.0  # retention: no backend traffic
    assert ipoib["miss_rate"] > 0.0
    assert fat["latency"] < ipoib["latency"]
    assert fat["latency"] > h_def["latency"]


def test_fatcache_rejects_nonblocking_api():
    from repro.client.client import UnsupportedOperation

    cluster = build_cluster(FATCACHE, server_mem=8 * MB, ssd_limit=32 * MB)
    client = cluster.clients[0]

    def app(sim):
        with pytest.raises(UnsupportedOperation):
            yield from client.iset(b"k", 1 * KB)
        yield sim.timeout(0)

    cluster.sim.run(until=cluster.sim.spawn(app(cluster.sim)))
