"""Tests for cluster construction and preloading."""

import pytest

from repro import build_cluster, profiles
from repro.core.cluster import ClusterSpec, ReplicationConfig
from repro.units import KB, MB


def test_build_counts():
    cluster = build_cluster(profiles.RDMA_MEM, num_servers=3, num_clients=2,
                            server_mem=8 * MB)
    assert len(cluster.servers) == 3
    assert len(cluster.clients) == 2
    # Every client is connected to every server.
    assert all(len(c._conns) == 3 for c in cluster.clients)


def test_hybrid_profile_gets_device():
    cluster = build_cluster(profiles.H_RDMA_DEF, server_mem=8 * MB,
                            ssd_limit=16 * MB)
    assert cluster.servers[0].device is not None
    assert cluster.servers[0].manager.hybrid


def test_inmemory_profile_has_no_device():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=8 * MB)
    assert cluster.servers[0].device is None


def test_profile_gates_client_nonblocking():
    c1 = build_cluster(profiles.H_RDMA_DEF, server_mem=8 * MB)
    assert not c1.clients[0].config.nonblocking_allowed
    c2 = build_cluster(profiles.H_RDMA_OPT_NONB_I, server_mem=8 * MB)
    assert c2.clients[0].config.nonblocking_allowed


def test_profile_sets_server_io_policy_and_ack():
    c = build_cluster(profiles.H_RDMA_OPT_BLOCK, server_mem=8 * MB)
    assert c.servers[0].config.io_policy == "adaptive"
    assert c.servers[0].config.early_ack
    d = build_cluster(profiles.H_RDMA_DEF, server_mem=8 * MB)
    assert d.servers[0].config.io_policy == "direct"
    assert not d.servers[0].config.early_ack


def test_clients_share_nodes_when_fewer_nodes():
    cluster = build_cluster(profiles.RDMA_MEM, num_clients=4, client_nodes=2,
                            server_mem=8 * MB)
    # 2 client nodes exist (plus 1 server node).
    names = set(cluster.fabric.nodes)
    assert {"cnode0", "cnode1", "snode0"} == names


def test_spec_and_overrides_mutually_exclusive():
    with pytest.raises(TypeError):
        build_cluster(profiles.RDMA_MEM, spec=ClusterSpec(),
                      num_servers=2)


def test_preload_routes_like_clients():
    cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I, num_servers=2,
                            server_mem=8 * MB, ssd_limit=16 * MB)
    pairs = [(f"key{i}".encode(), 4 * KB) for i in range(100)]
    assert cluster.preload(pairs) == 100
    assert cluster.total_items == 100
    # Every preloaded key must be retrievable through the client.
    client = cluster.clients[0]
    sim = cluster.sim

    def app(sim):
        for key, _ in pairs[:20]:
            r = yield from client.get(key)
            assert r.status == "HIT"

    sim.run(until=sim.spawn(app(sim)))


def test_reset_metrics_clears_all_clients():
    cluster = build_cluster(profiles.RDMA_MEM, num_clients=2,
                            server_mem=8 * MB)
    sim = cluster.sim

    def app(sim, client):
        yield from client.set(b"k", 1 * KB)

    for c in cluster.clients:
        sim.spawn(app(sim, c))
    sim.run()
    assert cluster.all_records()
    cluster.reset_metrics()
    assert not cluster.all_records()


def test_reset_metrics_clears_server_counters_too():
    """Regression: reset_metrics used to reset only the clients, so
    back-to-back runs on one cluster double-counted server stats."""
    cluster = build_cluster(profiles.H_RDMA_OPT_NONB_I, server_mem=8 * MB,
                            ssd_limit=16 * MB)
    sim, client = cluster.sim, cluster.clients[0]

    def app(sim):
        yield from client.set(b"k", 1 * KB)
        yield from client.get(b"k")

    sim.run(until=sim.spawn(app(sim)))
    server = cluster.servers[0]
    assert server.stats.sets == 1
    assert server.manager.stats.stores == 1
    cluster.reset_metrics()
    assert server.stats.sets == 0
    assert server.stats.gets == 0
    assert server.manager.stats.stores == 0
    assert server.device.stats.writes == 0
    # The cache itself is untouched: only run-scoped counters reset.
    assert len(server.manager.table) == 1


def test_reset_metrics_registry_flag():
    cluster = build_cluster(profiles.RDMA_MEM, server_mem=8 * MB,
                            observe=True)
    sim, client = cluster.sim, cluster.clients[0]

    def app(sim):
        yield from client.set(b"k", 1 * KB)

    sim.run(until=sim.spawn(app(sim)))
    counters = cluster.obs.snapshot()["counters"]
    assert any(v > 0 for v in counters.values())
    cluster.reset_metrics()  # default: registry totals survive
    assert cluster.obs.snapshot()["counters"] == counters
    cluster.reset_metrics(registry=True)
    assert all(v == 0 for v in
               cluster.obs.snapshot()["counters"].values())


def test_preload_replicates():
    cluster = build_cluster(
        profiles.RDMA_MEM, num_servers=3, server_mem=8 * MB,
        replication=ReplicationConfig(factor=2, router="ketama"))
    pairs = [(f"key{i}".encode(), 1 * KB) for i in range(50)]
    assert cluster.preload(pairs) == 50
    assert cluster.total_items == 100  # two copies of every key
