"""End-to-end determinism: identical runs produce identical results.

The simulator must be exactly reproducible — seeded RNGs, FIFO
tie-breaking, no wall-clock — because EXPERIMENTS.md numbers, benchmark
assertions, and regression tests all rely on it.
"""

from repro.core.profiles import H_RDMA_OPT_NONB_I, RDMA_MEM
from repro.harness.runner import run_workload, setup_cluster
from repro.units import KB, MB
from repro.workloads.generator import WorkloadSpec


def run_once(profile):
    spec = WorkloadSpec(num_ops=300, num_keys=512, value_length=8 * KB,
                        read_fraction=0.5, distribution="zipf", seed=5)
    cluster = setup_cluster(profile, spec, server_mem=16 * MB,
                            ssd_limit=64 * MB, num_clients=2)
    result = run_workload(cluster, spec)
    return result, cluster


def fingerprint(result):
    return [(r.op, r.key_length, r.status, r.t_issue, r.t_complete,
             r.blocked_time, tuple(sorted(r.stages.items())))
            for r in result.records]


def test_nonblocking_hybrid_run_is_deterministic():
    a, ca = run_once(H_RDMA_OPT_NONB_I)
    b, cb = run_once(H_RDMA_OPT_NONB_I)
    assert fingerprint(a) == fingerprint(b)
    assert a.span == b.span
    # Server-side state identical too.
    for sa, sb in zip(ca.servers, cb.servers):
        assert sa.manager.stats == sb.manager.stats
        assert len(sa.manager.table) == len(sb.manager.table)
        assert sa.stats.stage_time == sb.stats.stage_time


def test_blocking_inmemory_run_is_deterministic():
    a, _ = run_once(RDMA_MEM)
    b, _ = run_once(RDMA_MEM)
    assert fingerprint(a) == fingerprint(b)


def test_different_seeds_differ():
    spec1 = WorkloadSpec(num_ops=200, num_keys=256, value_length=4 * KB,
                         seed=1)
    spec2 = WorkloadSpec(num_ops=200, num_keys=256, value_length=4 * KB,
                         seed=2)
    r1 = run_workload(setup_cluster(RDMA_MEM, spec1, server_mem=16 * MB),
                      spec1)
    r2 = run_workload(setup_cluster(RDMA_MEM, spec2, server_mem=16 * MB),
                      spec2)
    assert fingerprint(r1) != fingerprint(r2)
