"""Unit tests for FaultPlan construction: parsing, seeding, validation."""

import pytest

from repro.faults import (
    CRASH,
    LINK_DEGRADE,
    PARTITION,
    SSD_SLOWDOWN,
    FaultEvent,
    FaultPlan,
    parse_time,
)


class TestParseTime:
    def test_suffixes(self):
        assert parse_time("5ms") == pytest.approx(5e-3)
        assert parse_time("200us") == pytest.approx(200e-6)
        assert parse_time("1.5s") == pytest.approx(1.5)

    def test_bare_number_is_seconds(self):
        assert parse_time("0.01") == pytest.approx(0.01)


class TestParse:
    def test_crash_spec(self):
        plan = FaultPlan.parse(["crash:server=1,at=5ms,duration=20ms"])
        (ev,) = plan.events
        assert ev.kind == CRASH
        assert ev.server == 1
        assert ev.at == pytest.approx(5e-3)
        assert ev.duration == pytest.approx(20e-3)
        assert ev.wipe is True

    def test_aliases_and_defaults(self):
        plan = FaultPlan.parse(["ssd:factor=20", "link:server=2,at=1ms",
                                "blackhole:duration=3ms"])
        kinds = [e.kind for e in plan.events]
        assert kinds == [SSD_SLOWDOWN, LINK_DEGRADE, PARTITION]
        assert plan.events[0].server == 0
        assert plan.events[0].at == 0.0
        assert plan.events[0].factor == 20.0

    def test_wipe_flag(self):
        plan = FaultPlan.parse(["crash:wipe=false,duration=1ms"])
        assert plan.events[0].wipe is False

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse(["meteor:server=0"])

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse(["crash:sever=1"])

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse([])
        assert FaultPlan.parse(["crash:at=1ms"])


class TestValidation:
    def test_negative_time(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            FaultEvent(kind=CRASH, server=0, at=-1.0)

    def test_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(kind=PARTITION, server=0, at=0.0, duration=0.0)

    def test_nonpositive_factor(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind=SSD_SLOWDOWN, server=0, at=0.0, factor=0.0)


class TestRandom:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(seed=42, num_servers=4, horizon=0.1,
                             num_faults=5)
        b = FaultPlan.random(seed=42, num_servers=4, horizon=0.1,
                             num_faults=5)
        assert a.events == b.events

    def test_different_seed_differs(self):
        a = FaultPlan.random(seed=1, num_servers=4, horizon=0.1,
                             num_faults=5)
        b = FaultPlan.random(seed=2, num_servers=4, horizon=0.1,
                             num_faults=5)
        assert a.events != b.events

    def test_events_within_bounds(self):
        plan = FaultPlan.random(seed=3, num_servers=3, horizon=1.0,
                                num_faults=8)
        for ev in plan.events:
            assert 0 <= ev.server < 3
            assert 0.0 <= ev.at <= 0.8
