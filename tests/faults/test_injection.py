"""Injection mechanics: each fault kind mutates and restores the cluster."""

import pytest

from repro import build_cluster, profiles
from repro.faults import FaultPlan
from repro.server.protocol import HIT, MISS, SERVER_DOWN
from repro.units import KB, MB, MS, US


def run_app(cluster, gen_fn):
    sim = cluster.sim
    p = sim.spawn(gen_fn(sim))
    return sim.run(until=p)


def small_cluster(profile, **kw):
    kw.setdefault("server_mem", 32 * MB)
    kw.setdefault("ssd_limit", 64 * MB)
    return build_cluster(profile, **kw)


class TestSsdSlowdown:
    def test_device_degraded_then_restored(self):
        cluster = small_cluster(profiles.H_RDMA_DEF)
        device = cluster.servers[0].device
        base = device.params
        plan = FaultPlan.parse(
            ["ssd:server=0,at=100us,duration=1ms,factor=10"])
        cluster.inject_faults(plan)
        sim = cluster.sim
        sim.run(until=sim.timeout(500 * US))
        assert device.params.read_latency == \
            pytest.approx(base.read_latency * 10)
        assert device.params.read_bandwidth == \
            pytest.approx(base.read_bandwidth / 10)
        sim.run(until=sim.timeout(2 * MS))
        assert device.params == base

    def test_noop_on_inmemory_design(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        plan = FaultPlan.parse(["ssd:server=0,at=0,duration=1ms"])
        cluster.inject_faults(plan)
        sim = cluster.sim
        sim.run(until=sim.timeout(2 * MS))  # must not raise


class TestLinkDegrade:
    def test_nics_degraded_then_restored(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        node = cluster.server_node(0)
        nics = list(node._nics.values())
        assert nics, "server node should own at least one NIC"
        base = [nic.params for nic in nics]
        plan = FaultPlan.parse(
            ["link:server=0,at=100us,duration=1ms,factor=5"])
        cluster.inject_faults(plan)
        sim = cluster.sim
        sim.run(until=sim.timeout(500 * US))
        for nic, params in zip(nics, base):
            assert nic.params.latency == pytest.approx(params.latency * 5)
            assert nic.params.name == params.name
        sim.run(until=sim.timeout(2 * MS))
        for nic, params in zip(nics, base):
            assert nic.params == params

    def test_degraded_link_slows_ops(self):
        def span_with(faults):
            cluster = small_cluster(profiles.RDMA_MEM)
            if faults:
                cluster.inject_faults(FaultPlan.parse(faults))
            client = cluster.clients[0]

            def app(sim):
                for i in range(20):
                    yield from client.set(b"k%d" % i, 32 * KB)

            run_app(cluster, app)
            return cluster.sim.now

        healthy = span_with(None)
        degraded = span_with(["link:server=0,at=0,factor=10"])
        # Only the server side of each round trip slows down (the
        # client's NIC is untouched), so expect well over 1.5x.
        assert degraded > healthy * 1.5


class TestPartition:
    def test_partition_heal_roundtrip(self):
        cluster = small_cluster(profiles.RDMA_MEM, request_timeout=1 * MS,
                                failure_threshold=0)
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]
        server = cluster.servers[0]

        def app(sim):
            yield from client.set(b"key", 4 * KB)
            server.partition()
            g = yield from client.get(b"key")
            # All retries black-holed: failed fast, fell back to the DB.
            assert g.status == SERVER_DOWN
            assert g.stages["miss_penalty"] > 0
            server.heal()
            g2 = yield from client.get(b"key")
            assert g2.status == HIT  # state survived the partition

        run_app(cluster, app)

    def test_fault_counter_registered(self):
        cluster = small_cluster(profiles.RDMA_MEM, observe=True)
        cluster.inject_faults(
            FaultPlan.parse(["partition:server=0,at=100us,duration=1ms"]))
        sim = cluster.sim
        sim.run(until=sim.timeout(2 * MS))
        counters = cluster.obs.snapshot()["counters"]
        assert counters['faults_injected{kind="partition",server="0"}'] == 1


class TestCrashRestart:
    def test_crash_then_restart_keeps_memory(self):
        cluster = small_cluster(profiles.RDMA_MEM, request_timeout=1 * MS,
                                failure_threshold=0)
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]
        server = cluster.servers[0]

        def app(sim):
            yield from client.set(b"key", 4 * KB)
            server.crash()
            assert not server.alive
            g = yield from client.get(b"key")
            assert g.status == SERVER_DOWN
            server.restart(wipe=False)
            assert server.alive
            g2 = yield from client.get(b"key")
            assert g2.status == HIT  # process restart: DRAM intact

        run_app(cluster, app)

    def test_crash_then_restart_wiped(self):
        cluster = small_cluster(profiles.RDMA_MEM, request_timeout=1 * MS,
                                failure_threshold=0)
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]
        server = cluster.servers[0]

        def app(sim):
            yield from client.set(b"key", 4 * KB)
            server.crash()
            yield from client.get(b"key")
            server.restart(wipe=True)
            g = yield from client.get(b"key")
            # Node loss: contents gone, so the read misses and the
            # client repopulates from the backend.
            assert g.status == MISS
            g2 = yield from client.get(b"key")
            assert g2.status == HIT

        run_app(cluster, app)

    def test_timed_crash_restart_via_plan(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        server = cluster.servers[0]
        cluster.inject_faults(FaultPlan.parse(
            ["crash:server=0,at=100us,duration=1ms,wipe=false"]))
        sim = cluster.sim
        sim.run(until=sim.timeout(500 * US))
        assert not server.alive
        sim.run(until=sim.timeout(2 * MS))
        assert server.alive
        assert server.crashes == 1
        assert server.restarts == 1

    def test_plan_rejects_bad_server_index(self):
        cluster = small_cluster(profiles.RDMA_MEM)
        with pytest.raises(ValueError, match="targets server 7"):
            cluster.inject_faults(FaultPlan.parse(["crash:server=7"]))
