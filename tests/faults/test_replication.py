"""Replication acceptance: crash 1 of 4 servers with replica copies.

The ISSUE's tentpole scenario: with ``replication_factor=2`` and
synchronous writes, the crash-1-of-4 outage is survivable — reads fail
over to the ring-successor replica and keep *hitting*, sustaining at
least 90% of the steady-state GET hit rate through the outage window,
where the R=1 run collapses to backend misses. Replay must stay
byte-identical for the same seed + plan, across both simulator paths.
"""

import pytest

from repro import build_cluster, profiles
from repro.core.cluster import ClusterSpec, ReplicationConfig
from repro.core.profiles import H_RDMA_OPT_NONB_I
from repro.faults import FaultPlan
from repro.harness.runner import RunConfig
from repro.server.protocol import HIT
from repro.sim import Simulator
from repro.units import KB, MB, MS, US
from repro.workloads.generator import WorkloadSpec

CRASH_AT = 200 * US
PLAN_SPECS = ["crash:server=1,at=200us"]


def repl_config(replication=2, write_mode="sync", faults=PLAN_SPECS,
                sim=None, observe=False, seed=5, num_ops=300):
    # Uniform keys: every post-crash read of a lost key is a cold miss
    # at R=1 (zipf would mask the outage by repopulating the hot head).
    spec = WorkloadSpec(num_ops=num_ops, num_keys=512, value_length=8 * KB,
                        read_fraction=0.5, distribution="uniform", seed=seed)
    cluster_spec = ClusterSpec(
        num_servers=4, num_clients=2, server_mem=16 * MB,
        ssd_limit=64 * MB,
        replication=ReplicationConfig(factor=replication,
                                      write_mode=write_mode,
                                      router="ketama"),
        request_timeout=2 * MS, retry_backoff=200 * US,
        failure_threshold=2, observe=observe)
    plan = FaultPlan.parse(faults) if faults else None
    return RunConfig(profile=H_RDMA_OPT_NONB_I, workload=spec,
                     cluster=cluster_spec, sim=sim, fault_plan=plan)


def outage_get_hit_rate(result, since=CRASH_AT):
    """GET hit rate over the outage window (ops issued after the crash)."""
    gets = [r for r in result.records
            if r.op == "get" and r.t_issue >= since]
    assert gets, "no GETs issued during the outage window"
    return sum(1 for r in gets if r.status == HIT) / len(gets)


def fingerprint(result):
    return [(r.op, r.key_length, r.status, r.t_issue, r.t_complete,
             r.blocked_time, tuple(sorted(r.stages.items())))
            for r in result.records]


def counter_total(cluster, name):
    counters = cluster.obs.snapshot()["counters"]
    return sum(v for k, v in counters.items() if k.startswith(name + "{"))


class TestCrashOneOfFourReplicated:
    """The acceptance criterion, head on."""

    def test_r2_sync_sustains_hit_rate_r1_collapses(self):
        steady = repl_config(replication=2, faults=None).run()
        cfg2 = repl_config(replication=2)
        cluster2 = cfg2.build()
        r2 = cfg2.run(cluster=cluster2)
        r1 = repl_config(replication=1).run()

        # Nothing hung: every op of every client resolved.
        assert len(r2.records) == len(steady.records) == len(r1.records)
        for client in cluster2.clients:
            assert client.outstanding_count == 0

        steady_rate = outage_get_hit_rate(steady)
        replicated = outage_get_hit_rate(r2)
        single = outage_get_hit_rate(r1)
        # With a replica, failover reads land on a server that holds the
        # data: >= 90% of the steady-state hit rate survives the outage.
        assert replicated >= 0.9 * steady_rate
        # Without one, the rerouted reads start cold and the hit rate
        # collapses below that bound (the PR-2 behaviour this PR fixes).
        assert single < 0.9 * steady_rate
        assert replicated > single

    def test_replica_reads_and_propagations_counted(self):
        cfg = repl_config(replication=2, observe=True)
        cluster = cfg.build()
        cfg.run(cluster=cluster)
        # Writes fanned out to the second replica...
        assert counter_total(cluster, "replica_propagations") > 0
        # ...and post-crash reads were served by replicas.
        assert counter_total(cluster, "client_replica_reads") > 0
        assert counter_total(cluster, "client_failovers") > 0

    def test_same_seed_and_plan_replays_identically(self):
        a = repl_config(replication=2).run()
        b = repl_config(replication=2).run()
        assert fingerprint(a) == fingerprint(b)
        assert a.span == b.span

    def test_replay_byte_identical_across_sim_paths(self):
        """Fast-lane and legacy-heap schedulers must produce the same
        timeline for the replicated crash scenario."""
        fast = repl_config(replication=2,
                           sim=Simulator(fast_lane=True)).run()
        legacy = repl_config(replication=2,
                             sim=Simulator(fast_lane=False)).run()
        assert fingerprint(fast) == fingerprint(legacy)
        assert fast.span == legacy.span

    def test_async_mode_also_survives_and_drains(self):
        cfg = repl_config(replication=2, write_mode="async")
        cluster = cfg.build()
        result = cfg.run(cluster=cluster)
        assert len(result.records) == 2 * 300
        for client in cluster.clients:
            assert client.outstanding_count == 0
        # Background propagation still replicated enough for failover
        # reads to keep hitting through the outage.
        steady = repl_config(replication=2, faults=None).run()
        assert (outage_get_hit_rate(result)
                >= 0.9 * outage_get_hit_rate(steady))


class TestResync:
    """Anti-entropy catch-up when a replica rejoins."""

    def small_replicated(self, observe=False):
        cluster = build_cluster(
            profiles.H_RDMA_OPT_NONB_I, num_servers=4, num_clients=1,
            server_mem=16 * MB, ssd_limit=64 * MB,
            replication=ReplicationConfig(factor=2, router="ketama"),
            request_timeout=2 * MS, failure_threshold=2,
            observe=observe)
        pairs = [(f"key{i}".encode(), 4 * KB) for i in range(64)]
        cluster.preload(pairs)
        return cluster, pairs

    def test_wipe_restart_recovers_from_live_replicas(self):
        cluster, _ = self.small_replicated(observe=True)
        before = len(cluster.servers[1].manager.table)
        assert before > 0  # it held replicas of some keys
        cluster.servers[1].crash()
        copied = cluster.restart_server(1, wipe=True)
        assert copied == before
        assert len(cluster.servers[1].manager.table) == before
        assert counter_total(cluster, "resync_items") == copied

    def test_resync_copies_only_owned_keys(self):
        cluster, pairs = self.small_replicated()
        router = cluster._client_router()
        cluster.servers[1].crash()
        cluster.restart_server(1, wipe=True)
        table = cluster.servers[1].manager.table
        for key, _ in pairs:
            assert (key in table) == (1 in router.replicas_for(key, 2))

    def test_resync_noop_at_r1(self):
        cluster = build_cluster(
            profiles.RDMA_MEM, num_servers=2, server_mem=8 * MB,
            replication=ReplicationConfig(router="ketama"))
        cluster.preload([(b"a", 1 * KB), (b"b", 1 * KB)])
        assert cluster.resync_server(0) == 0

    def test_resync_noop_while_target_down(self):
        cluster, _ = self.small_replicated()
        cluster.servers[1].crash()
        assert cluster.resync_server(1) == 0  # still dead: nothing to do

    def test_recovered_replica_serves_reads(self):
        cluster, pairs = self.small_replicated()
        client = cluster.clients[0]
        sim = cluster.sim
        cluster.servers[1].crash()
        cluster.restart_server(1, wipe=True)

        def app(sim):
            for key, _ in pairs:
                r = yield from client.get(key)
                assert r.status == HIT

        sim.run(until=sim.spawn(app(sim)))


class TestMgetAcrossCrash:
    """Batched reads spanning a crashed-then-ejected server."""

    def test_mget_spanning_crashed_server_still_hits(self):
        cluster = build_cluster(
            profiles.H_RDMA_OPT_NONB_I, num_servers=4, num_clients=1,
            server_mem=16 * MB, ssd_limit=64 * MB,
            replication=ReplicationConfig(factor=2, router="ketama"),
            request_timeout=1 * MS, failure_threshold=1)
        client = cluster.clients[0]
        sim = cluster.sim
        keys = [f"key{i}".encode() for i in range(32)]

        def app(sim):
            for k in keys:
                yield from client.set(k, 2 * KB)
            cluster.servers[1].crash()
            # The first batch eats the detection timeouts, ejects the
            # dead server, and fails its reads over to the replicas.
            reqs = yield from client.mget(keys)
            assert all(r.status == HIT for r in reqs)
            assert all(r.server_index != 1 for r in reqs)
            # Once ejected, batches route around the corpse directly.
            t0 = sim.now
            reqs = yield from client.mget(keys)
            assert all(r.status == HIT for r in reqs)
            assert sim.now - t0 < 1 * MS  # no timeout cycles paid

        sim.run(until=sim.spawn(app(sim)))
        assert not client._conns[1].healthy


class TestSpecValidation:
    def test_replication_factor_bounds(self):
        with pytest.raises(ValueError):
            build_cluster(profiles.RDMA_MEM, num_servers=2,
                          replication=ReplicationConfig(factor=3))
        with pytest.raises(ValueError):
            ReplicationConfig(factor=0)

    def test_write_mode_validated(self):
        with pytest.raises(ValueError):
            ReplicationConfig(factor=2, write_mode="eventual")
