"""The ISSUE's acceptance scenario: crash 1 of 4 servers mid-run.

The run must complete without hanging — affected requests resolve via
timeout -> retry -> ejection/failover — with a degraded hit rate rather
than a deadlock, and the same seed + FaultPlan must replay a
byte-identical timeline.
"""

from repro.core.cluster import ClusterSpec, ReplicationConfig
from repro.core.profiles import H_RDMA_OPT_NONB_I, RDMA_MEM
from repro.faults import FaultPlan
from repro.harness.runner import run_workload, setup_cluster
from repro.units import KB, MB, MS, US
from repro.workloads.generator import WorkloadSpec

PLAN_SPECS = ["crash:server=1,at=200us"]


def crash_run(profile, seed=5, observe=False, faults=PLAN_SPECS):
    spec = WorkloadSpec(num_ops=200, num_keys=512, value_length=8 * KB,
                        read_fraction=0.5, distribution="zipf", seed=seed)
    cluster_spec = ClusterSpec(
        num_servers=4, num_clients=2, server_mem=16 * MB,
        ssd_limit=64 * MB,
        replication=ReplicationConfig(router="ketama"),
        request_timeout=2 * MS, retry_backoff=200 * US,
        failure_threshold=2, observe=observe)
    cluster = setup_cluster(profile, spec, cluster_spec=cluster_spec)
    plan = FaultPlan.parse(faults) if faults else None
    result = run_workload(cluster, spec, fault_plan=plan)
    return result, cluster


def fingerprint(result):
    return [(r.op, r.key_length, r.status, r.t_issue, r.t_complete,
             r.blocked_time, tuple(sorted(r.stages.items())))
            for r in result.records]


class TestCrashOneOfFour:
    def test_completes_with_degraded_hit_rate(self):
        result, cluster = crash_run(H_RDMA_OPT_NONB_I, observe=True)
        # Every operation of every client resolved: no deadlock.
        assert len(result.records) == 2 * 200
        for client in cluster.clients:
            assert client.outstanding_count == 0
        # The failure was detected and routed around.
        counters = cluster.obs.snapshot()["counters"]

        def total(name):
            return sum(v for k, v in counters.items()
                       if k.startswith(name + "{"))

        assert total("client_timeouts") > 0
        assert total("client_retries") > 0
        assert total("client_ejections") >= 1
        assert total("client_failovers") > 0
        assert counters['server_crashes{server="server1"}'] == 1
        # Degraded, not dead: hit rate drops but work still completes.
        healthy, _ = crash_run(H_RDMA_OPT_NONB_I, observe=False,
                               faults=None)
        assert result.summary["miss_rate"] > healthy.summary["miss_rate"]

    def test_blocking_api_also_survives(self):
        result, cluster = crash_run(RDMA_MEM)
        assert len(result.records) == 2 * 200
        for client in cluster.clients:
            assert client.outstanding_count == 0
        assert any(not c.healthy for c in cluster.clients[0]._conns)

    def test_same_seed_and_plan_replays_identically(self):
        a, ca = crash_run(H_RDMA_OPT_NONB_I)
        b, cb = crash_run(H_RDMA_OPT_NONB_I)
        assert fingerprint(a) == fingerprint(b)
        assert a.span == b.span
        for sa, sb in zip(ca.servers, cb.servers):
            assert sa.manager.stats == sb.manager.stats
            assert len(sa.manager.table) == len(sb.manager.table)

    def test_trace_timeline_is_byte_identical(self):
        import json

        from repro.obs.export import chrome_trace_events

        def timeline():
            result, cluster = crash_run(H_RDMA_OPT_NONB_I, observe=True)
            return json.dumps(chrome_trace_events(cluster.obs.tracer),
                              sort_keys=True)

        # Tracing is off (observe only samples metrics) unless trace=True;
        # rebuild with tracing for the byte-level comparison.
        def traced():
            spec = WorkloadSpec(num_ops=120, num_keys=256,
                                value_length=8 * KB, read_fraction=0.5,
                                seed=9)
            cluster_spec = ClusterSpec(
                num_servers=4, num_clients=1, server_mem=16 * MB,
                ssd_limit=64 * MB,
                replication=ReplicationConfig(router="ketama"),
                request_timeout=2 * MS, trace=True)
            cluster = setup_cluster(H_RDMA_OPT_NONB_I, spec,
                                    cluster_spec=cluster_spec)
            run_workload(cluster, spec,
                         fault_plan=FaultPlan.parse(PLAN_SPECS))
            return json.dumps(chrome_trace_events(cluster.obs.tracer),
                              sort_keys=True)

        assert traced() == traced()

    def test_random_plan_is_reproducible_end_to_end(self):
        plan = FaultPlan.random(seed=11, num_servers=4, horizon=5 * MS,
                                num_faults=2)
        spec = WorkloadSpec(num_ops=150, num_keys=256, value_length=4 * KB,
                            read_fraction=0.5, seed=3)

        def run():
            cluster_spec = ClusterSpec(
                num_servers=4, num_clients=2, server_mem=16 * MB,
                replication=ReplicationConfig(router="ketama"),
                request_timeout=2 * MS, eject_duration=5 * MS)
            cluster = setup_cluster(RDMA_MEM, spec,
                                    cluster_spec=cluster_spec)
            return run_workload(cluster, spec, fault_plan=plan)

        a, b = run(), run()
        assert fingerprint(a) == fingerprint(b)
        assert len(a.records) == 2 * 150


class TestFailFast:
    def test_all_servers_ejected_fails_fast(self):
        """With every server down the client returns SERVER_DOWN
        immediately instead of burning a timeout cycle per op."""
        from repro import build_cluster, profiles
        from repro.server.protocol import SERVER_DOWN

        cluster = build_cluster(
            profiles.RDMA_MEM, num_servers=2, server_mem=16 * MB,
            replication=ReplicationConfig(router="ketama"),
            request_timeout=1 * MS, failure_threshold=1)
        cluster.backend.default_value_length = 4 * KB
        client = cluster.clients[0]
        for server in cluster.servers:
            server.crash()

        def app(sim):
            # First gets detect and eject both servers the slow way.
            yield from client.get(b"a")
            yield from client.get(b"b")
            assert all(not c.healthy for c in client._conns)
            t0 = sim.now
            g = yield from client.get(b"c")
            assert g.status == SERVER_DOWN
            # Fail-fast: only the 2ms backend fallback fetch — no
            # 1ms-timeout/backoff cycles like the detection gets paid.
            assert sim.now - t0 < 2.5 * MS

        p = cluster.sim.spawn(app(cluster.sim))
        cluster.sim.run(until=p)
